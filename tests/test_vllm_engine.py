"""The vLLM-like static engine: correctness and scheduling behaviour."""

import pytest

from repro.engines.base import EngineOptions, split_requests
from repro.engines.vllm_like import VllmLikeEngine
from repro.errors import CapacityError, ConfigurationError
from repro.parallel.config import parse_config
from repro.runtime.request import Request
from repro.workloads.synthetic import constant_workload


class TestSplitRequests:
    def reqs(self, n):
        return [Request(request_id=i, prompt_len=10, output_len=2) for i in range(n)]

    def test_round_robin(self):
        parts = split_requests(self.reqs(7), 3)
        assert [len(p) for p in parts] == [3, 2, 2]
        assert parts[0][0].request_id == 0
        assert parts[1][0].request_id == 1

    def test_single_part(self):
        assert len(split_requests(self.reqs(4), 1)[0]) == 4

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            split_requests(self.reqs(2), 0)


class TestCompletion:
    def test_all_requests_complete(self, tiny_model, cluster_a10_4):
        wl = constant_workload(16, 256, 32)
        r = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2P2")).run(wl)
        assert r.num_requests == 16
        assert r.output_tokens == 16 * 32
        assert r.total_time > 0

    def test_empty_workload_rejected(self, tiny_model, cluster_a10_4):
        with pytest.raises(ConfigurationError):
            VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2P2")).run([])

    def test_config_must_fit_cluster(self, tiny_model, cluster_a10_4):
        with pytest.raises(ConfigurationError):
            VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T4P2"))

    def test_oversized_prompt_raises(self, tiny_model, cluster_a10_4):
        wl = constant_workload(1, 4_000_000, 4)
        with pytest.raises(CapacityError):
            VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2P2")).run(wl)

    def test_model_must_fit(self, model_70b, cluster_a10_8):
        with pytest.raises(CapacityError):
            VllmLikeEngine(model_70b, cluster_a10_8, parse_config("T2")).run(
                constant_workload(2, 16, 4)
            )

    @pytest.mark.parametrize("label", ["T4", "P4", "T2P2", "D2T2", "D2P2", "D4"])
    def test_all_configs_complete(self, tiny_model, cluster_a10_4, label):
        wl = constant_workload(12, 300, 20)
        r = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config(label)).run(wl)
        assert r.num_requests == 12

    def test_deterministic(self, tiny_model, cluster_a10_4):
        wl = constant_workload(8, 200, 16)
        eng = lambda: VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2P2"))
        assert eng().run(wl).total_time == pytest.approx(eng().run(wl).total_time)


class TestScheduling:
    def test_phase_times_cover_total(self, tiny_model, cluster_a10_4, small_sharegpt):
        r = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2P2")).run(
            small_sharegpt
        )
        assert sum(r.phase_time.values()) == pytest.approx(r.total_time, rel=1e-6)

    def test_static_engine_has_no_transitions(self, tiny_model, cluster_a10_4):
        wl = constant_workload(8, 200, 16)
        r = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T4")).run(wl)
        assert r.transitions == 0

    def test_batching_amortizes_decode(self, tiny_model, cluster_a10_4):
        """Throughput grows with request count (bigger decode batches)."""
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T4"))
        small = engine.run(constant_workload(2, 256, 64))
        large = engine.run(constant_workload(64, 256, 64))
        assert large.throughput_rps > 1.5 * small.throughput_rps

    def test_preemption_under_pressure(self, tiny_model, cluster_a10_4):
        """Long outputs with tight KV must finish via recompute preemption."""
        opts = EngineOptions(max_num_seqs=64)
        wl = constant_workload(48, 2000, 800)
        r = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2"), opts).run(wl)
        assert r.num_requests == 48


class TestChunkedPrefill:
    def test_completes(self, tiny_model, cluster_a10_4, small_arxiv):
        opts = EngineOptions(chunked_prefill=True, chunk_size=1024)
        r = VllmLikeEngine(
            tiny_model, cluster_a10_4, parse_config("T2P2"), opts
        ).run(small_arxiv)
        assert r.num_requests == small_arxiv.num_requests
        assert "+chunked" in r.label

    def test_mixed_phase_present(self, tiny_model, cluster_a10_4, small_sharegpt):
        opts = EngineOptions(chunked_prefill=True, chunk_size=512)
        r = VllmLikeEngine(
            tiny_model, cluster_a10_4, parse_config("T2"), opts
        ).run(small_sharegpt)
        assert r.phase_time.get("mixed", 0.0) > 0.0

    def test_same_tokens_as_plain(self, tiny_model, cluster_a10_4, small_arxiv):
        plain = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2")).run(
            small_arxiv
        )
        chunked = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("T2"),
            EngineOptions(chunked_prefill=True, chunk_size=1024),
        ).run(small_arxiv)
        assert chunked.output_tokens == plain.output_tokens

    def test_tiny_chunk_slower(self, tiny_model, cluster_a10_4, small_arxiv):
        """The paper: a chunk size that is too small reduces efficiency."""
        big = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("T2"),
            EngineOptions(chunked_prefill=True, chunk_size=4096),
        ).run(small_arxiv)
        tiny = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("T2"),
            EngineOptions(chunked_prefill=True, chunk_size=64),
        ).run(small_arxiv)
        assert tiny.total_time > big.total_time
