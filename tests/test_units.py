"""Unit formatting and constants."""

import pytest

from repro.utils.units import (
    GB,
    GIB,
    KIB,
    MIB,
    MS,
    SEC,
    TIB,
    US,
    fmt_bytes,
    fmt_rate,
    fmt_time,
)


class TestConstants:
    def test_binary_units_scale_by_1024(self):
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB
        assert TIB == 1024 * GIB

    def test_decimal_vs_binary(self):
        assert GB < GIB

    def test_time_units(self):
        assert US == pytest.approx(1e-6)
        assert MS == pytest.approx(1e-3)
        assert SEC == 1.0


class TestFmtBytes:
    def test_bytes(self):
        assert fmt_bytes(512) == "512 B"

    def test_gib(self):
        assert fmt_bytes(24 * GIB) == "24.00 GiB"

    def test_tib(self):
        assert fmt_bytes(2 * TIB) == "2.00 TiB"

    def test_negative(self):
        assert fmt_bytes(-1 * MIB) == "-1.00 MiB"

    def test_fractional(self):
        assert fmt_bytes(1536 * MIB) == "1.50 GiB"


class TestFmtTime:
    def test_nanoseconds(self):
        assert fmt_time(5e-9) == "5 ns"

    def test_microseconds(self):
        assert fmt_time(42e-6) == "42.0 us"

    def test_milliseconds(self):
        assert fmt_time(3.2e-3) == "3.20 ms"

    def test_seconds(self):
        assert fmt_time(2.5) == "2.50 s"

    def test_minutes(self):
        assert fmt_time(90) == "1.50 min"

    def test_negative(self):
        assert fmt_time(-0.004).startswith("-4.00")


class TestFmtRate:
    def test_plain(self):
        assert fmt_rate(0.5) == "0.500 req/s"

    def test_kilo(self):
        assert fmt_rate(2500, "tok/s") == "2.50 ktok/s"

    def test_mega(self):
        assert fmt_rate(3.1e6) == "3.10 Mreq/s"
