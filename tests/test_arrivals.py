"""Arrival processes: determinism, target rates, burstiness, traces."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.arrivals import (
    bursty_arrivals,
    make_arrivals,
    offered_rate,
    poisson_arrivals,
    stamp_arrivals,
    trace_arrivals,
)
from repro.workloads.synthetic import constant_workload, poisson_arrival_workload


def base(n=400):
    return constant_workload(n, prompt_len=100, output_len=10)


def gaps(workload):
    arrivals = np.array([r.arrival_time for r in workload.requests])
    return np.diff(np.concatenate([[0.0], arrivals]))


class TestStamping:
    def test_preserves_lengths_and_order(self):
        wl = poisson_arrivals(base(50), 10.0, seed=1)
        for orig, stamped in zip(base(50).requests, wl.requests):
            assert stamped.request_id == orig.request_id
            assert stamped.prompt_len == orig.prompt_len
            assert stamped.output_len == orig.output_len
        arrivals = [r.arrival_time for r in wl.requests]
        assert arrivals == sorted(arrivals)
        assert all(t > 0 for t in arrivals)

    def test_stamp_arrivals_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            stamp_arrivals(base(5), [1.0, 2.0])

    def test_explicit_stamp(self):
        wl = stamp_arrivals(base(3), [0.0, 1.0, 2.5])
        assert [r.arrival_time for r in wl.requests] == [0.0, 1.0, 2.5]


class TestPoisson:
    def test_deterministic_per_seed(self):
        a = poisson_arrivals(base(), 5.0, seed=42)
        b = poisson_arrivals(base(), 5.0, seed=42)
        c = poisson_arrivals(base(), 5.0, seed=43)
        assert [r.arrival_time for r in a.requests] == [
            r.arrival_time for r in b.requests
        ]
        assert [r.arrival_time for r in a.requests] != [
            r.arrival_time for r in c.requests
        ]

    def test_hits_target_rate(self):
        wl = poisson_arrivals(base(2000), 8.0, seed=0)
        assert offered_rate(wl) == pytest.approx(8.0, rel=0.1)

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            poisson_arrivals(base(), 0.0)
        with pytest.raises(ConfigurationError):
            poisson_arrivals(base(), -3.0)

    def test_legacy_alias_matches(self):
        via_alias = poisson_arrival_workload(base(), 5.0, seed=9)
        direct = poisson_arrivals(base(), 5.0, seed=9)
        assert [r.arrival_time for r in via_alias.requests] == [
            r.arrival_time for r in direct.requests
        ]


class TestBursty:
    def test_hits_target_rate(self):
        wl = bursty_arrivals(base(4000), 8.0, burstiness=4.0, seed=0)
        assert offered_rate(wl) == pytest.approx(8.0, rel=0.15)

    def test_burstier_than_poisson(self):
        """Gamma gaps with cv^2=6 must show more gap variability than
        exponential gaps at the same mean rate."""
        p = gaps(poisson_arrivals(base(3000), 10.0, seed=5))
        b = gaps(bursty_arrivals(base(3000), 10.0, burstiness=6.0, seed=5))
        cv2 = lambda g: g.var() / g.mean() ** 2
        assert cv2(b) > 2 * cv2(p)

    def test_burstiness_one_is_poisson_shaped(self):
        g = gaps(bursty_arrivals(base(3000), 10.0, burstiness=1.0, seed=5))
        assert g.var() / g.mean() ** 2 == pytest.approx(1.0, rel=0.2)

    def test_invalid_burstiness(self):
        with pytest.raises(ConfigurationError):
            bursty_arrivals(base(), 5.0, burstiness=0.0)


class TestTrace:
    def write_json(self, tmp_path, payload, name="trace.json"):
        p = tmp_path / name
        p.write_text(json.dumps(payload))
        return p

    def test_replays_normalized_timestamps(self, tmp_path):
        p = self.write_json(tmp_path, [100.0, 101.5, 100.5, 104.0])
        wl = trace_arrivals(base(4), p)
        # Sorted and shifted so the earliest arrival is t=0.
        assert [r.arrival_time for r in wl.requests] == [0.0, 0.5, 1.5, 4.0]
        assert "trace(trace.json)" in wl.name

    def test_json_object_and_record_forms(self, tmp_path):
        obj = self.write_json(tmp_path, {"arrivals": [5.0, 6.0]}, "a.json")
        recs = self.write_json(
            tmp_path,
            [{"arrival_time": 5.0}, {"timestamp": 6.0}],
            "b.json",
        )
        for p in (obj, recs):
            wl = trace_arrivals(base(2), p)
            assert [r.arrival_time for r in wl.requests] == [0.0, 1.0]

    def test_csv_with_header(self, tmp_path):
        p = tmp_path / "trace.csv"
        p.write_text("arrival_time\n10.0\n10.25\n11.5\n")
        wl = trace_arrivals(base(3), p)
        assert [r.arrival_time for r in wl.requests] == [0.0, 0.25, 1.5]

    def test_extra_timestamps_ignored(self, tmp_path):
        p = self.write_json(tmp_path, [0.0, 1.0, 2.0, 3.0, 4.0])
        wl = trace_arrivals(base(2), p)
        assert [r.arrival_time for r in wl.requests] == [0.0, 1.0]

    def test_short_trace_rejected(self, tmp_path):
        p = self.write_json(tmp_path, [0.0, 1.0])
        with pytest.raises(ConfigurationError, match="2 timestamps for 3"):
            trace_arrivals(base(3), p)

    def test_missing_and_malformed_traces(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            trace_arrivals(base(1), tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            trace_arrivals(base(1), bad)
        nonnum = self.write_json(tmp_path, [1.0, "soon"], "nonnum.json")
        with pytest.raises(ConfigurationError, match="not a timestamp"):
            trace_arrivals(base(2), nonnum)

    def test_example_trace_ships_and_replays(self):
        from pathlib import Path

        example = Path(__file__).parent.parent / "examples" / "arrival_trace.json"
        wl = trace_arrivals(base(24), example)
        arrivals = [r.arrival_time for r in wl.requests]
        assert arrivals[0] == 0.0
        assert arrivals == sorted(arrivals)
        assert offered_rate(wl) > 0

    def test_make_arrivals_trace_prefix(self, tmp_path):
        p = self.write_json(tmp_path, [0.0, 2.0])
        wl = make_arrivals(base(2), f"trace:{p}")
        assert [r.arrival_time for r in wl.requests] == [0.0, 2.0]
        with pytest.raises(ConfigurationError, match="trace:<path>"):
            make_arrivals(base(2), "trace:")


class TestDispatch:
    def test_make_arrivals_kinds(self):
        assert "poisson" in make_arrivals(base(), "poisson", 5.0).name
        assert "bursty" in make_arrivals(base(), "bursty", 5.0).name
        with pytest.raises(ConfigurationError):
            make_arrivals(base(), "uniform", 5.0)

    def test_offered_rate_rejects_offline(self):
        with pytest.raises(ConfigurationError):
            offered_rate(base())

    def test_offered_rate_empty_workload_raises_configuration_error(self):
        """The empty case must surface as ConfigurationError, not the bare
        ValueError ``max()`` raises on an empty sequence."""
        from types import SimpleNamespace

        empty = SimpleNamespace(requests=())
        with pytest.raises(ConfigurationError, match="empty workload"):
            offered_rate(empty)


class TestDiurnal:
    def test_deterministic_per_seed(self):
        from repro.workloads.arrivals import diurnal_arrivals

        a = diurnal_arrivals(base(64), 2.0, 60.0, seed=3)
        b = diurnal_arrivals(base(64), 2.0, 60.0, seed=3)
        assert [r.arrival_time for r in a.requests] == [
            r.arrival_time for r in b.requests
        ]
        c = diurnal_arrivals(base(64), 2.0, 60.0, seed=4)
        assert [r.arrival_time for r in a.requests] != [
            r.arrival_time for r in c.requests
        ]

    def test_mean_rate_and_order_preserved(self):
        from repro.workloads.arrivals import diurnal_arrivals

        wl = diurnal_arrivals(base(256), 4.0, 30.0, seed=0)
        stamps = [r.arrival_time for r in wl.requests]
        assert stamps == sorted(stamps)
        assert len(stamps) / max(stamps) == pytest.approx(4.0, rel=0.25)

    def test_day_shape_modulates_density(self):
        """With amplitude 0.8 the rising half of each period must hold
        clearly more arrivals than the falling half (the analytic ratio is
        (pi + 1.6)/(pi - 1.6) ~ 3.1)."""
        from repro.workloads.arrivals import diurnal_arrivals

        period = 60.0
        wl = diurnal_arrivals(base(400), 2.0, period, amplitude=0.8, seed=0)
        phases = [(r.arrival_time % period) / period for r in wl.requests]
        peak = sum(1 for p in phases if p < 0.5)
        trough = len(phases) - peak
        assert peak > 2 * trough

    def test_bursty_base_process(self):
        from repro.workloads.arrivals import diurnal_arrivals

        smooth = diurnal_arrivals(base(64), 2.0, 60.0, burstiness=1.0, seed=0)
        bursty = diurnal_arrivals(base(64), 2.0, 60.0, burstiness=8.0, seed=0)
        assert [r.arrival_time for r in smooth.requests] != [
            r.arrival_time for r in bursty.requests
        ]

    def test_validation(self):
        from repro.workloads.arrivals import diurnal_arrivals

        with pytest.raises(ConfigurationError, match="rate"):
            diurnal_arrivals(base(4), 0.0, 60.0)
        with pytest.raises(ConfigurationError, match="period"):
            diurnal_arrivals(base(4), 1.0, 0.0)
        with pytest.raises(ConfigurationError, match="amplitude"):
            diurnal_arrivals(base(4), 1.0, 60.0, amplitude=1.0)

    def test_make_arrivals_diurnal_prefix(self):
        wl = make_arrivals(base(32), "diurnal:45", 2.0, seed=1)
        assert "diurnal" in wl.name and "T=45" in wl.name
        with pytest.raises(ConfigurationError, match="diurnal"):
            make_arrivals(base(4), "diurnal:fast", 2.0)


class TestTraceRescale:
    def write_json(self, tmp_path, stamps):
        p = tmp_path / "trace.json"
        p.write_text(json.dumps(stamps))
        return p

    def test_rescales_to_target_offered_rate(self, tmp_path):
        p = self.write_json(tmp_path, [0.0, 1.0, 3.0, 10.0])
        wl = trace_arrivals(base(4), p, rate_rps=2.0)
        assert offered_rate(wl) == pytest.approx(2.0)
        # Shape preserved: ratios between gaps survive the linear rescale.
        stamps = [r.arrival_time for r in wl.requests]
        assert stamps[2] / stamps[1] == pytest.approx(3.0)

    def test_make_arrivals_passes_request_rate(self, tmp_path):
        p = self.write_json(tmp_path, [0.0, 1.0, 3.0, 10.0])
        scaled = make_arrivals(base(4), f"trace:{p}", 5.0)
        assert offered_rate(scaled) == pytest.approx(5.0)
        raw = make_arrivals(base(4), f"trace:{p}", 0.0)
        assert offered_rate(raw) == pytest.approx(0.4)

    def test_zero_span_trace_cannot_rescale(self, tmp_path):
        p = self.write_json(tmp_path, [4.0, 4.0])
        with pytest.raises(ConfigurationError, match="span"):
            trace_arrivals(base(2), p, rate_rps=1.0)
        # Without a target rate the degenerate trace still replays.
        wl = trace_arrivals(base(2), p)
        assert [r.arrival_time for r in wl.requests] == [0.0, 0.0]

    def test_rescale_rate_must_be_positive(self, tmp_path):
        p = self.write_json(tmp_path, [0.0, 1.0])
        with pytest.raises(ConfigurationError, match="positive"):
            trace_arrivals(base(2), p, rate_rps=-1.0)
