"""Arrival processes: determinism, target rates, burstiness."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.arrivals import (
    bursty_arrivals,
    make_arrivals,
    offered_rate,
    poisson_arrivals,
    stamp_arrivals,
)
from repro.workloads.synthetic import constant_workload, poisson_arrival_workload


def base(n=400):
    return constant_workload(n, prompt_len=100, output_len=10)


def gaps(workload):
    arrivals = np.array([r.arrival_time for r in workload.requests])
    return np.diff(np.concatenate([[0.0], arrivals]))


class TestStamping:
    def test_preserves_lengths_and_order(self):
        wl = poisson_arrivals(base(50), 10.0, seed=1)
        for orig, stamped in zip(base(50).requests, wl.requests):
            assert stamped.request_id == orig.request_id
            assert stamped.prompt_len == orig.prompt_len
            assert stamped.output_len == orig.output_len
        arrivals = [r.arrival_time for r in wl.requests]
        assert arrivals == sorted(arrivals)
        assert all(t > 0 for t in arrivals)

    def test_stamp_arrivals_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            stamp_arrivals(base(5), [1.0, 2.0])

    def test_explicit_stamp(self):
        wl = stamp_arrivals(base(3), [0.0, 1.0, 2.5])
        assert [r.arrival_time for r in wl.requests] == [0.0, 1.0, 2.5]


class TestPoisson:
    def test_deterministic_per_seed(self):
        a = poisson_arrivals(base(), 5.0, seed=42)
        b = poisson_arrivals(base(), 5.0, seed=42)
        c = poisson_arrivals(base(), 5.0, seed=43)
        assert [r.arrival_time for r in a.requests] == [
            r.arrival_time for r in b.requests
        ]
        assert [r.arrival_time for r in a.requests] != [
            r.arrival_time for r in c.requests
        ]

    def test_hits_target_rate(self):
        wl = poisson_arrivals(base(2000), 8.0, seed=0)
        assert offered_rate(wl) == pytest.approx(8.0, rel=0.1)

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            poisson_arrivals(base(), 0.0)
        with pytest.raises(ConfigurationError):
            poisson_arrivals(base(), -3.0)

    def test_legacy_alias_matches(self):
        via_alias = poisson_arrival_workload(base(), 5.0, seed=9)
        direct = poisson_arrivals(base(), 5.0, seed=9)
        assert [r.arrival_time for r in via_alias.requests] == [
            r.arrival_time for r in direct.requests
        ]


class TestBursty:
    def test_hits_target_rate(self):
        wl = bursty_arrivals(base(4000), 8.0, burstiness=4.0, seed=0)
        assert offered_rate(wl) == pytest.approx(8.0, rel=0.15)

    def test_burstier_than_poisson(self):
        """Gamma gaps with cv^2=6 must show more gap variability than
        exponential gaps at the same mean rate."""
        p = gaps(poisson_arrivals(base(3000), 10.0, seed=5))
        b = gaps(bursty_arrivals(base(3000), 10.0, burstiness=6.0, seed=5))
        cv2 = lambda g: g.var() / g.mean() ** 2
        assert cv2(b) > 2 * cv2(p)

    def test_burstiness_one_is_poisson_shaped(self):
        g = gaps(bursty_arrivals(base(3000), 10.0, burstiness=1.0, seed=5))
        assert g.var() / g.mean() ** 2 == pytest.approx(1.0, rel=0.2)

    def test_invalid_burstiness(self):
        with pytest.raises(ConfigurationError):
            bursty_arrivals(base(), 5.0, burstiness=0.0)


class TestDispatch:
    def test_make_arrivals_kinds(self):
        assert "poisson" in make_arrivals(base(), "poisson", 5.0).name
        assert "bursty" in make_arrivals(base(), "bursty", 5.0).name
        with pytest.raises(ConfigurationError):
            make_arrivals(base(), "uniform", 5.0)

    def test_offered_rate_rejects_offline(self):
        with pytest.raises(ConfigurationError):
            offered_rate(base())
