"""ParallelConfig and label parsing."""

import pytest

from repro.errors import ConfigurationError
from repro.parallel.config import (
    ParallelConfig,
    parse_config,
    parse_transition,
    transition_label,
)


class TestConfig:
    def test_defaults(self):
        c = ParallelConfig()
        assert (c.tp, c.pp, c.dp) == (1, 1, 1)
        assert c.num_gpus == 1

    def test_num_gpus(self):
        assert ParallelConfig(tp=2, pp=2, dp=2).num_gpus == 8
        assert ParallelConfig(tp=4, pp=2).model_gpus == 8

    def test_invalid_degree(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(tp=0)
        with pytest.raises(ConfigurationError):
            ParallelConfig(pp=-1)

    def test_label_omits_unit_degrees(self):
        assert ParallelConfig(tp=4, pp=2).label() == "T4P2"
        assert ParallelConfig(tp=1, pp=8).label() == "P8"
        assert ParallelConfig(dp=2, tp=4).label() == "D2T4"
        assert ParallelConfig().label() == "T1"

    def test_ordering(self):
        assert ParallelConfig(tp=1) < ParallelConfig(tp=2)

    def test_hashable(self):
        assert len({ParallelConfig(tp=2), ParallelConfig(tp=2)}) == 1


class TestParsing:
    @pytest.mark.parametrize(
        "label,expect",
        [
            ("T4P2", (4, 2, 1)),
            ("t4p2", (4, 2, 1)),
            ("tp4pp2", (4, 2, 1)),
            ("P8", (1, 8, 1)),
            ("D2T2P2", (2, 2, 2)),
            ("d2t4p1", (4, 1, 2)),
            ("dp2tp4", (4, 1, 2)),
        ],
    )
    def test_roundtrip(self, label, expect):
        c = parse_config(label)
        assert (c.tp, c.pp, c.dp) == expect

    def test_parse_then_label_stable(self):
        for label in ("T4P2", "D2P4", "T8"):
            assert parse_config(label).label() == label

    @pytest.mark.parametrize("bad", ["", "X4", "T", "T4T2", "4T", "T4 P2x"])
    def test_invalid_labels(self, bad):
        with pytest.raises(ConfigurationError):
            parse_config(bad)

    def test_transition(self):
        cp, cd = parse_transition("P8->T4P2")
        assert cp.pp == 8 and cd.tp == 4 and cd.pp == 2

    def test_transition_requires_arrow(self):
        with pytest.raises(ConfigurationError):
            parse_transition("P8T4P2")

    def test_transition_label_roundtrip(self):
        cp, cd = parse_transition("D2P4->D2T4")
        assert transition_label(cp, cd) == "D2P4->D2T4"
