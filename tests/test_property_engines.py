"""Property-based tests: engine-level invariants on random workloads."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SeesawEngine
from repro.engines.vllm_like import VllmLikeEngine
from repro.hardware.cluster import make_cluster
from repro.models.config import ModelConfig
from repro.parallel.config import parse_config
from repro.runtime.request import Request
from repro.workloads.spec import WorkloadSpec

TINY = ModelConfig(
    name="prop-tiny",
    num_layers=8,
    hidden_size=1024,
    num_heads=8,
    num_kv_heads=2,
    intermediate_size=2816,
    vocab_size=32000,
)
CLUSTER = make_cluster("A10", 4)


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=1, max_value=24))
    reqs = []
    for i in range(n):
        reqs.append(
            Request(
                request_id=i,
                prompt_len=draw(st.integers(min_value=1, max_value=4096)),
                output_len=draw(st.integers(min_value=1, max_value=512)),
            )
        )
    return WorkloadSpec(name="prop", requests=tuple(reqs))


class TestEngineInvariants:
    @given(wl=workloads())
    @settings(max_examples=25, deadline=None)
    def test_vllm_conserves_tokens(self, wl):
        r = VllmLikeEngine(TINY, CLUSTER, parse_config("T2P2")).run(wl)
        assert r.num_requests == wl.num_requests
        assert r.input_tokens == wl.total_input_tokens
        assert r.output_tokens == wl.total_output_tokens
        assert r.total_time > 0

    @given(wl=workloads())
    @settings(max_examples=25, deadline=None)
    def test_seesaw_conserves_tokens(self, wl):
        r = SeesawEngine(
            TINY, CLUSTER, parse_config("P4"), parse_config("T4")
        ).run(wl)
        assert r.num_requests == wl.num_requests
        assert r.output_tokens == wl.total_output_tokens
        # Swap accounting balances: nothing stays parked.
        assert r.swapped_in_tokens == r.swapped_out_tokens

    @given(wl=workloads())
    @settings(max_examples=15, deadline=None)
    def test_more_work_takes_longer(self, wl):
        engine = VllmLikeEngine(TINY, CLUSTER, parse_config("T2P2"))
        base = engine.run(wl).total_time
        bigger = WorkloadSpec(
            name="prop2",
            requests=wl.requests
            + tuple(
                Request(request_id=1000 + i, prompt_len=512, output_len=64)
                for i in range(8)
            ),
        )
        assert engine.run(bigger).total_time > base

    @given(wl=workloads())
    @settings(max_examples=15, deadline=None)
    def test_phase_times_account_for_wall_clock(self, wl):
        r = SeesawEngine(
            TINY, CLUSTER, parse_config("P4"), parse_config("T4")
        ).run(wl)
        assert sum(r.phase_time.values()) == r.total_time or abs(
            sum(r.phase_time.values()) - r.total_time
        ) <= 1e-6 * r.total_time
