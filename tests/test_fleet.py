"""Elastic replica fleets: lifecycle, autoscaling, and the PR 4 contract.

Contracts pinned by this PR:

1. **PR 4 golden equivalence** — ``--coupled`` with ``--autoscaler none``
   is bit-exact with the fixed-fleet simulator it replaced: the numbers
   below were captured from the PR 4 HEAD (before the fleet refactor)
   and must keep reproducing exactly, for all four engines plus online
   and jsq variants.
2. **Drain semantics** — a draining replica receives no new dispatches;
   its in-flight work (admitted *and* already-dispatched pending)
   completes and is counted.
3. **Lifecycle** — scale-ups pay the cost-model provisioning latency
   (weight load + KV warmup) before entering the membership; membership
   changes are logged as first-class events.
4. **Partial-lifetime accounting** — idle fractions normalize by each
   replica's active window; fleet stats (peak/mean dp, replica-seconds)
   follow the lifecycle log; the DP latency merge rejects duplicated
   requests.
5. **Acceptance** — the autoscale sweep shows an autoscaled fleet
   matching the peak-provisioned static fleet's p99-TTFT SLO attainment
   at >= 25% fewer replica-seconds under diurnal arrivals.
"""

import math

import pytest

from repro.cluster import ClusterSimulator, ReplicaLifecycle
from repro.cluster.autoscaler import (
    PredictiveAutoscaler,
    ThresholdAutoscaler,
    make_autoscaler,
)
from repro.cluster.fleet import ReplicaFleet, provision_times
from repro.core.engine import SeesawEngine
from repro.core.options import SeesawOptions
from repro.engines.base import EngineOptions
from repro.engines.decode_prioritized import DecodePrioritizedEngine
from repro.engines.disaggregated import DisaggregatedEngine, DisaggregationPlan
from repro.engines.vllm_like import VllmLikeEngine
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.autoscale_sweep import run_autoscale_sweep
from repro.models.registry import get_model
from repro.parallel.config import parse_config, parse_transition
from repro.routing.load import RouterContext
from repro.runtime.latency import LatencyStats, RequestLatency
from repro.runtime.request import Request
from repro.workloads.arrivals import bursty_arrivals, diurnal_arrivals
from repro.workloads.datasets import sharegpt_workload
from repro.workloads.synthetic import bimodal_workload, constant_workload

# Captured at PR 4 HEAD (fixed-membership ClusterSimulator), before the
# fleet refactor: (total_time, iterations, ttft_p99, e2e_p99, queue_p99)
# for each engine under coupled static on the cells built below.
PR4_GOLDEN = {
    "vllm-offline": (1.917398817420879, 920, 0.14125690808754426, 1.8353704930688788, 0.0),
    "vllm-online": (5.7168395378414045, 213, 1.2345313182358653, 2.22815347669794, 1.0390886216044763),
    "decode-prioritized": (1.917398817420879, 920, 0.14125690808754426, 1.8353704930688788, 0.0),
    "seesaw": (1.9481649116417552, 924, 0.057029020087544235, 1.864981738009755, 0.0),
    "disagg": (0.1267382060087855, 62, 0.04386810993695029, 0.16482280220361706, 0.0),
    "vllm-online-jsq": (4.763435267779178, 169, 0.5087750041673026, 1.2686505273644857, 0.312662000836642),
}


def assert_matches_golden(key, result):
    total, iters, ttft_p99, e2e_p99, queue_p99 = PR4_GOLDEN[key]
    assert result.total_time == total
    assert result.iterations == iters
    lat = result.latency
    assert lat is not None
    assert lat.ttft.p99 == ttft_p99
    assert lat.e2e.p99 == e2e_p99
    assert lat.queue_delay.p99 == queue_p99


class TestPR4GoldenEquivalence:
    """--coupled --autoscaler none is bit-exact with the PR 4 output."""

    def run_coupled(self, tiny_model, cluster_a10_4, key, router="static"):
        opts = EngineOptions(coupled=True, autoscaler="none", router=router)
        wl_offline = sharegpt_workload(40, seed=7)
        wl_online = bursty_arrivals(bimodal_workload(32), 8.0, burstiness=8.0, seed=11)
        if key == "vllm-offline":
            return VllmLikeEngine(
                tiny_model, cluster_a10_4, parse_config("D2T2"), opts
            ).run(wl_offline)
        if key in ("vllm-online", "vllm-online-jsq"):
            return VllmLikeEngine(
                tiny_model, cluster_a10_4, parse_config("D2T2"), opts
            ).run(wl_online)
        if key == "decode-prioritized":
            return DecodePrioritizedEngine(
                tiny_model, cluster_a10_4, parse_config("D2T2"), opts
            ).run(wl_offline)
        if key == "seesaw":
            cp, cd = parse_transition("D2P2->D2T2")
            return SeesawEngine(
                tiny_model, cluster_a10_4, cp, cd, SeesawOptions(coupled=True)
            ).run(wl_offline)
        if key == "disagg":
            plan = DisaggregationPlan(
                prefill_config=parse_config("D2"), decode_config=parse_config("D2")
            )
            return DisaggregatedEngine(tiny_model, cluster_a10_4, plan, opts).run(
                constant_workload(16, 256, 32)
            )
        raise AssertionError(key)

    @pytest.mark.parametrize(
        "key",
        ["vllm-offline", "vllm-online", "decode-prioritized", "seesaw", "disagg"],
    )
    def test_engine_bit_exact_with_pr4(self, tiny_model, cluster_a10_4, key):
        assert_matches_golden(key, self.run_coupled(tiny_model, cluster_a10_4, key))

    def test_jsq_bit_exact_with_pr4(self, tiny_model, cluster_a10_4):
        result = self.run_coupled(
            tiny_model, cluster_a10_4, "vllm-online-jsq", router="jsq"
        )
        assert_matches_golden("vllm-online-jsq", result)

    def test_no_fleet_stats_without_autoscaler(self, tiny_model, cluster_a10_4):
        result = self.run_coupled(tiny_model, cluster_a10_4, "vllm-offline")
        assert result.router is not None
        assert result.router.fleet is None  # fixed fleet reports as before


def make_fleet(engine, initial_dp=2, **kw):
    return ReplicaFleet(engine, initial_dp, RouterContext(), **kw)


class TestLifecycle:
    def test_provisioning_pays_weight_load_and_warmup(
        self, tiny_model, cluster_a10_4
    ):
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2"))
        weight_s, warm_s = provision_times(engine)
        assert weight_s > 0 and warm_s > 0
        fleet = make_fleet(engine, initial_dp=1, autoscaler_name="threshold")
        assert fleet.scale_up(now=10.0, n=1) == 1
        handle = fleet.handles[1]
        assert handle.state is ReplicaLifecycle.PROVISIONING
        # Not yet due: weights still streaming.
        fleet.poll(10.0 + weight_s / 2)
        assert handle.state is ReplicaLifecycle.PROVISIONING
        fleet.poll(10.0 + weight_s + warm_s / 2)
        assert handle.state is ReplicaLifecycle.WARMING
        assert len(fleet.dispatch_loads()) == 1  # not dispatchable yet
        fleet.poll(10.0 + weight_s + warm_s)
        assert handle.state is ReplicaLifecycle.ACTIVE
        assert handle.active_at == pytest.approx(10.0 + weight_s + warm_s)
        assert handle.sim is not None
        assert handle.sim.clock == handle.active_at  # born on the shared clock
        assert len(fleet.dispatch_loads()) == 2
        kinds = [e.kind for e in fleet.events]
        assert kinds == ["scale-up", "active"]

    def test_initial_fleet_is_prewarmed_at_t0(self, tiny_model, cluster_a10_4):
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("D2T2"))
        fleet = make_fleet(engine, initial_dp=2)
        assert fleet.active_count == 2
        assert all(h.active_at == 0.0 for h in fleet.handles)
        assert fleet.events == []  # the starting fleet is not a scale event

    def test_max_dp_bounded_by_cluster_gpus(self, tiny_model, cluster_a10_4):
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2"))
        with pytest.raises(ConfigurationError):
            make_fleet(engine, initial_dp=1, max_dp=3)  # 3 * 2 GPUs > 4

    def test_scale_down_never_drains_last_active(self, tiny_model, cluster_a10_4):
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2"))
        fleet = make_fleet(engine, initial_dp=2, min_dp=1, autoscaler_name="threshold")
        assert fleet.scale_down(now=1.0, n=5) == 1
        assert fleet.active_count == 1
        assert fleet.scale_down(now=2.0, n=1) == 0


class TestDrainSemantics:
    def test_draining_replica_gets_no_new_dispatches_and_finishes_inflight(
        self, tiny_model, cluster_a10_4
    ):
        """The drain contract: no new work in, everything already
        dispatched (admitted or still pending) completes and is counted."""
        engine = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("D2T2"),
            EngineOptions(coupled=True, router="jsq", autoscaler="threshold",
                          min_dp=1, max_dp=2),
        )
        reqs = [Request(i, 256, 8, arrival_time=0.1 * i) for i in range(12)]
        sim = ClusterSimulator(engine, reqs)
        fleet = sim.fleet
        # Load both replicas; the lighter one (replica 1) is the drain
        # victim and still holds in-flight work when the order lands.
        for r in reqs[:3]:
            fleet.handles[0].sim.inject(r)
        victim = fleet.handles[1]
        assert victim.sim is not None
        victim.sim.inject(reqs[3])
        victim.sim.inject(reqs[4])
        fleet.scale_down(0.0, 1)
        assert victim.state is ReplicaLifecycle.DRAINING
        assert len(fleet.dispatch_loads()) == 1
        assert fleet.dispatch_loads()[0].replica_id == 0
        # The draining replica still owns and executes its backlog.
        for s in fleet.live_sims():
            s.finish()
        fleet.reap_drained()
        assert victim.state is ReplicaLifecycle.STOPPED
        assert len(victim.sim.run.state.finished) == 2
        assert victim.stopped_at == victim.sim.clock
        assert victim.sim.clock > 0

    def test_drained_requests_counted_in_cluster_result(
        self, tiny_model, cluster_a10_4
    ):
        """End-to-end: a run that scales down mid-flight loses no request
        (every arrival is served and appears in the merged latency)."""
        engine = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("D2T2"),
            EngineOptions(coupled=True, router="jsq", autoscaler="threshold",
                          min_dp=1, max_dp=2),
        )
        wl = diurnal_arrivals(constant_workload(60, 512, 16), 6.0, 8.0, seed=2)
        result = engine.run(wl)
        assert result.num_requests == 60
        assert result.latency is not None
        assert result.latency.num_requests == 60

    def test_idle_draining_replica_stops_at_drain_order(
        self, tiny_model, cluster_a10_4
    ):
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("D2T2"))
        fleet = make_fleet(engine, initial_dp=2, min_dp=1,
                           autoscaler_name="threshold")
        fleet.scale_down(5.0, 1)
        stopped = [h for h in fleet.handles
                   if h.state is ReplicaLifecycle.STOPPED]
        assert len(stopped) == 1
        assert stopped[0].stopped_at == 5.0


class TestPartialLifetimeAccounting:
    def test_idle_fraction_normalized_by_active_window(
        self, tiny_model, cluster_a10_4
    ):
        """A replica alive for a fraction of the run must not have its
        idle share diluted by time it did not exist."""
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2"))
        fleet = make_fleet(engine, initial_dp=1, max_dp=2,
                           autoscaler_name="threshold")
        fleet.scale_up(0.0, 1)
        late = fleet.handles[1]
        fleet.poll(late.active_at)
        assert late.state is ReplicaLifecycle.ACTIVE
        makespan = late.active_at + 10.0
        # Replica 1 never ran anything: idle for its whole (short) window.
        fractions = fleet.idle_fractions(makespan)
        assert fractions[1] == pytest.approx(1.0)
        # Fleet stats bill it from provisioning start, not activation.
        stats = fleet.stats(makespan)
        assert stats.replica_seconds == pytest.approx(makespan + makespan)
        assert stats.active_replica_seconds == pytest.approx(makespan + 10.0)
        assert stats.peak_dp == 2
        assert 1.0 < stats.mean_dp < 2.0
        assert stats.provision_seconds == pytest.approx(late.active_at)

    def test_latency_merge_rejects_duplicate_requests(self):
        rec = RequestLatency(
            request_id=7,
            arrival_time=0.0,
            first_schedule_time=0.1,
            first_token_time=0.2,
            finish_time=0.3,
            output_len=4,
        )
        part = LatencyStats(records=(rec,))
        with pytest.raises(SimulationError):
            LatencyStats.merged([part, part])

    def test_makespan_covers_early_drained_replicas(
        self, tiny_model, cluster_a10_4
    ):
        """merge total_time is the cluster makespan even when the replica
        that finished last is not the one with the most work."""
        engine = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("D2T2"),
            EngineOptions(coupled=True, router="jsq", autoscaler="threshold",
                          min_dp=1, max_dp=2),
        )
        wl = diurnal_arrivals(constant_workload(48, 512, 16), 6.0, 8.0, seed=3)
        result = engine.run(wl)
        sim_makespan = result.total_time
        assert result.latency is not None
        last_finish = max(r.finish_time for r in result.latency.records)
        assert sim_makespan >= last_finish - 1e-9


class TestAutoscalers:
    def ctx(self):
        return RouterContext(prefill_tokens_per_s=1000.0, decode_tokens_per_s=500.0)

    def test_threshold_scales_up_on_queue_depth(self, tiny_model, cluster_a10_4):
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2"))
        fleet = make_fleet(engine, initial_dp=1, max_dp=2,
                           autoscaler_name="threshold")
        scaler = ThresholdAutoscaler(1, 2, up_queue_tokens=100.0, interval_s=1.0)
        # Pile unadmitted work on the only replica: queue above threshold.
        sim = fleet.handles[0].sim
        for i in range(4):
            sim.inject(Request(i, 200, 4, arrival_time=50.0))
        target = scaler.decide(10.0, fleet)
        assert target == 2

    def test_threshold_scales_down_when_idle(self, tiny_model, cluster_a10_4):
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("D2T2"))
        fleet = make_fleet(engine, initial_dp=2, min_dp=1,
                           autoscaler_name="threshold")
        scaler = ThresholdAutoscaler(1, 2, up_queue_tokens=100.0, interval_s=1.0)
        assert scaler.decide(0.0, fleet) is None  # anchors the window
        # Nothing ran for 20 virtual seconds: both replicas fully idle.
        target = scaler.decide(20.0, fleet)
        assert target == 1

    def test_threshold_startup_window_never_drains(self, tiny_model, cluster_a10_4):
        """Regression: the [activation, first-arrival) window is trivially
        100% idle on any fleet; the idle signal must not vote until a
        replica's window spans a full evaluation interval — otherwise a
        loaded fleet drains a replica at the first arrival and has to pay
        provisioning latency to claw it back."""
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("D2T2"))
        fleet = make_fleet(engine, initial_dp=2, min_dp=1,
                           autoscaler_name="threshold")
        scaler = ThresholdAutoscaler(1, 2, up_queue_tokens=100.0, interval_s=5.0)
        # First evaluation lands just after t=0 (the first arrival): the
        # startup window is degenerate, so no scale-down.
        assert scaler.decide(0.17, fleet) is None
        # A later evaluation over a mature, genuinely idle window may act.
        assert scaler.decide(20.0, fleet) == 1

    def test_predictive_right_sizes_with_erlang_c(self, tiny_model, cluster_a10_4):
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2"))
        fleet = make_fleet(engine, initial_dp=1, max_dp=2,
                           autoscaler_name="predictive")
        scaler = PredictiveAutoscaler(
            1, 4, capacity_rps_per_replica=1.0, prefill_latency_s=0.1,
            ttft_slo=2.0, window=8, interval_s=0.5,
        )
        # ~2.5 req/s offered against 1 req/s per replica: needs >= 3.
        for k in range(8):
            scaler.note_arrival(k * 0.4)
        target = scaler.decide(8 * 0.4, fleet)
        assert target is not None and target >= 3
        # A trickle needs only the floor.
        slow = PredictiveAutoscaler(
            1, 4, capacity_rps_per_replica=1.0, prefill_latency_s=0.1,
            ttft_slo=2.0, window=8, interval_s=0.5,
        )
        for k in range(8):
            slow.note_arrival(k * 10.0)
        assert slow.decide(80.0, fleet) == 1

    def test_predictive_without_slo_bounds_utilization(
        self, tiny_model, cluster_a10_4
    ):
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2"))
        fleet = make_fleet(engine, initial_dp=1, max_dp=2,
                           autoscaler_name="predictive")
        scaler = PredictiveAutoscaler(
            1, 4, capacity_rps_per_replica=1.0, ttft_slo=None,
            window=8, interval_s=0.5,
        )
        for k in range(8):
            scaler.note_arrival(k * 0.5)  # 2 req/s
        # 2 rps at 0.8 max utilization needs ceil(2 / 0.8) = 3 replicas.
        assert scaler.decide(4.0, fleet) == 3

    def test_make_autoscaler_none_returns_none(self):
        assert make_autoscaler(
            "none", 1, 2, up_queue_tokens=1.0, capacity_rps_per_replica=1.0
        ) is None
        with pytest.raises(ConfigurationError):
            make_autoscaler(
                "bogus", 1, 2, up_queue_tokens=1.0, capacity_rps_per_replica=1.0
            )


class TestOptionsValidation:
    def test_autoscaler_requires_coupled(self):
        with pytest.raises(ConfigurationError):
            EngineOptions(autoscaler="threshold")

    def test_unknown_autoscaler_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineOptions(autoscaler="bogus", coupled=True)

    def test_min_dp_above_max_dp_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineOptions(
                autoscaler="threshold", coupled=True, min_dp=4, max_dp=2
            )

    def test_nonpositive_dp_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineOptions(autoscaler="threshold", coupled=True, min_dp=0)
        with pytest.raises(ConfigurationError):
            EngineOptions(autoscaler="threshold", coupled=True, max_dp=-1)

    def test_dp_bounds_without_autoscaler_rejected(self):
        """--min-dp/--max-dp would be silent no-ops on a fixed fleet;
        they must be rejected instead of ignored."""
        with pytest.raises(ConfigurationError):
            EngineOptions(coupled=True, min_dp=2)
        with pytest.raises(ConfigurationError):
            EngineOptions(coupled=True, max_dp=4)


class TestElasticEndToEnd:
    def test_fleet_scales_up_under_ramp(self):
        """Under a diurnal ramp the fleet provisions extra replicas, the
        membership events are logged, and every request is served."""
        model = get_model("15b")
        from repro.hardware.cluster import make_cluster

        cluster = make_cluster("A10", 8)
        wl = diurnal_arrivals(constant_workload(80, 2048, 64), 2.2, 25.0, seed=0)
        result = VllmLikeEngine(
            model,
            cluster,
            parse_config("T2"),
            EngineOptions(coupled=True, router="jsq", autoscaler="threshold",
                          min_dp=1, max_dp=4),
        ).run(wl)
        stats = result.router
        assert stats is not None and stats.fleet is not None
        fleet = stats.fleet
        assert fleet.scale_ups >= 1
        assert fleet.peak_dp >= 2
        assert fleet.num_handles == len(stats.requests_per_replica)
        assert result.num_requests == 80
        assert any(e.kind == "active" for e in fleet.events)
        # Activations happen strictly after their scale-up decision (the
        # provisioning latency is real).
        ups = {e.replica_id: e.time for e in fleet.events if e.kind == "scale-up"}
        for e in fleet.events:
            if e.kind == "active":
                assert e.time > ups[e.replica_id]

    def test_static_policy_round_robins_over_active_membership(
        self, tiny_model, cluster_a10_4
    ):
        """The static deal keeps working when membership changes size."""
        wl = diurnal_arrivals(constant_workload(40, 256, 8), 8.0, 10.0, seed=1)
        result = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("T2"),
            EngineOptions(coupled=True, router="static", autoscaler="threshold",
                          min_dp=1, max_dp=2),
        ).run(wl)
        assert result.num_requests == 40


class TestAutoscaleSweepAcceptance:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_autoscale_sweep(num_requests=240, seed=0)

    def test_autoscaled_matches_slo_at_25pct_fewer_replica_seconds(self, sweep):
        """Acceptance: at least one autoscaled fleet matches (or beats)
        the peak-provisioned fleet's p99-TTFT SLO attainment at >= 25%
        fewer replica-seconds."""
        wins = sweep.elastic_wins()
        assert wins, "no autoscaler matched the static fleet at -25% replica-s"
        base = sweep.static_peak
        for win in wins:
            assert win.attainment(sweep.ttft_slo) >= base.attainment(sweep.ttft_slo)
            assert win.replica_seconds <= 0.75 * base.replica_seconds

    def test_predictive_beats_static_on_goodput_per_replica_second(self, sweep):
        base = sweep.static_peak
        pred = sweep.point("predictive")
        assert (
            pred.goodput_per_replica_second(sweep.ttft_slo)
            > base.goodput_per_replica_second(sweep.ttft_slo)
        )

    def test_render_includes_fleet_columns(self, sweep):
        from repro.experiments.autoscale_sweep import render_autoscale_sweep

        out = render_autoscale_sweep(sweep)
        assert "replica-s" in out and "static-peak" in out
        assert "predictive" in out and "slo-att" in out


class TestFleetReport:
    def test_fleet_table_renders_static_and_elastic_rows(
        self, tiny_model, cluster_a10_4
    ):
        from repro.analysis.report import fleet_table

        wl = diurnal_arrivals(constant_workload(40, 256, 8), 8.0, 10.0, seed=1)
        static = VllmLikeEngine(
            tiny_model, cluster_a10_4, parse_config("D2T2"),
            EngineOptions(coupled=True),
        ).run(wl)
        elastic = VllmLikeEngine(
            tiny_model, cluster_a10_4, parse_config("T2"),
            EngineOptions(coupled=True, router="jsq", autoscaler="threshold",
                          min_dp=1, max_dp=2),
        ).run(wl)
        out = fleet_table(
            {"static": static, "elastic": elastic}, ttft_slo=5.0
        )
        assert "peak-dp" in out and "replica-s" in out
        assert "threshold" in out and "none" in out

    def test_fleet_table_raises_without_router_stats(self):
        from repro.analysis.report import fleet_table
        from repro.runtime.metrics import EngineResult

        bare = EngineResult(
            engine="x", label="y", num_requests=1, total_time=1.0,
            input_tokens=1, output_tokens=1, phase_time={}, breakdown=None,
            iterations=1, transitions=0,
        )
        with pytest.raises(ConfigurationError):
            fleet_table({"bare": bare})


class TestSimulatorFleetIntegration:
    @pytest.mark.filterwarnings("ignore::DeprecationWarning")  # uses the alias on purpose
    def test_dispatch_log_tracks_membership_size(self, tiny_model, cluster_a10_4):
        """Queue snapshots in the dispatch log match the dispatchable
        membership at each decision, which may grow over the run."""
        wl = diurnal_arrivals(constant_workload(40, 256, 8), 8.0, 10.0, seed=1)
        engine = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("T2"),
            EngineOptions(coupled=True, router="jsq", autoscaler="threshold",
                          min_dp=1, max_dp=2, debug_dispatch_log=True),
        )
        sim = ClusterSimulator(engine, list(wl.requests))
        sim.run()
        sizes = {len(q) for _, _, q in sim.dispatch_log}
        assert 1 in sizes  # started at min_dp
        assert all(1 <= s <= 2 for s in sizes)

    def test_next_event_inf_for_unborn_replica(self, tiny_model, cluster_a10_4):
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2"))
        fleet = make_fleet(engine, initial_dp=1, max_dp=2,
                           autoscaler_name="threshold")
        fleet.scale_up(0.0, 1)
        # The provisioning handle has no sim yet: not in the live set.
        assert len(list(fleet.live_sims())) == 1
        assert math.isinf(fleet.handles[0].sim.next_event_time())
