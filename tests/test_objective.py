"""The serving-objective layer: analytic queueing + SLO-aware search.

Pins the tentpole contracts:

1. **Default equivalence** — the throughput objective reproduces the
   seed's analytic ordering bit-exactly (goldens survive).
2. **Queueing sanity** — predicted attainment is non-increasing in the
   offered rate, zero past capacity, and 1.0 with no bounds.
3. **Simulation agreement** — the analytic classification (comfortable
   vs. overloaded) matches measured attainment on a small workload.
4. **Plumbing bugfix** — ``best_seesaw_pair`` forwards engine options to
   the simulated re-ranking (it used to silently drop them).
"""

import pytest

from repro.autotuner.objective import OBJECTIVES, ServingObjective
from repro.autotuner.predictor import predict_request_rate
from repro.autotuner.search import (
    best_seesaw_pair,
    rank_seesaw_pairs,
    rank_static_configs,
)
from repro.core.options import SeesawOptions
from repro.engines.vllm_like import VllmLikeEngine
from repro.errors import ConfigurationError
from repro.workloads.arrivals import poisson_arrivals


def rates_for(model, cluster, workload, label="T4P2"):
    from repro.parallel.config import parse_config

    cfg = parse_config(label)
    n = workload.num_requests
    return predict_request_rate(
        model,
        cluster,
        cfg,
        cfg,
        workload.total_input_tokens / n,
        workload.total_output_tokens / n,
        concurrency=n,
    )


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown objective"):
            ServingObjective(kind="latency")

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            ServingObjective(request_rate=-1.0)

    def test_nonpositive_slo_rejected(self):
        with pytest.raises(ConfigurationError):
            ServingObjective(ttft_slo=0.0)

    def test_objectives_tuple(self):
        assert OBJECTIVES == ("throughput", "slo")


class TestAnalyticQueueing:
    def test_attainment_non_increasing_in_offered_rate(
        self, model_34b, cluster_a10_8, small_arxiv
    ):
        rates = rates_for(model_34b, cluster_a10_8, small_arxiv)
        n = small_arxiv.num_requests
        avg_in = small_arxiv.total_input_tokens / n
        avg_out = small_arxiv.total_output_tokens / n
        capacity = rates.request_rate
        attainments = []
        for frac in (0.0, 0.2, 0.4, 0.6, 0.8, 0.95, 1.0, 1.5):
            obj = ServingObjective(
                kind="slo", request_rate=frac * capacity, ttft_slo=30.0
            )
            attainments.append(obj.predict(rates, avg_in, avg_out).attainment)
        assert attainments == sorted(attainments, reverse=True)
        assert attainments[0] == 1.0  # offline: no queueing term
        assert attainments[-1] == 0.0  # past capacity: unstable queue

    def test_utilization_and_goodput(self, model_34b, cluster_a10_8, small_arxiv):
        rates = rates_for(model_34b, cluster_a10_8, small_arxiv)
        n = small_arxiv.num_requests
        avg_in = small_arxiv.total_input_tokens / n
        avg_out = small_arxiv.total_output_tokens / n
        obj = ServingObjective(kind="slo", request_rate=0.5 * rates.request_rate)
        pred = obj.predict(rates, avg_in, avg_out)
        assert pred.utilization == pytest.approx(0.5)
        assert pred.stable
        # No bounds given: attainment 1.0, goodput = the served rate.
        assert pred.attainment == 1.0
        assert pred.goodput_rps == pytest.approx(obj.request_rate)

    def test_tpot_bound_is_a_hard_gate(self, model_34b, cluster_a10_8, small_arxiv):
        rates = rates_for(model_34b, cluster_a10_8, small_arxiv)
        n = small_arxiv.num_requests
        avg_in = small_arxiv.total_input_tokens / n
        avg_out = small_arxiv.total_output_tokens / n
        loose = ServingObjective(kind="slo", tpot_slo=10.0)
        tight = ServingObjective(kind="slo", tpot_slo=1e-6)
        assert loose.predict(rates, avg_in, avg_out).attainment == 1.0
        assert tight.predict(rates, avg_in, avg_out).attainment == 0.0

    def test_unreachable_ttft_slo_is_zero(self, model_34b, cluster_a10_8, small_arxiv):
        """A TTFT bound below the bare prefill latency can never be met."""
        rates = rates_for(model_34b, cluster_a10_8, small_arxiv)
        n = small_arxiv.num_requests
        avg_in = small_arxiv.total_input_tokens / n
        avg_out = small_arxiv.total_output_tokens / n
        obj = ServingObjective(kind="slo", request_rate=0.0, ttft_slo=1e-6)
        assert obj.predict(rates, avg_in, avg_out).attainment == 0.0


class TestRankingObjectives:
    def test_throughput_objective_matches_seed_ordering(
        self, model_34b, cluster_a10_8, small_arxiv
    ):
        """Default ranking is bit-exact with the explicit throughput
        objective (and therefore with the seed's ordering)."""
        default = rank_static_configs(model_34b, cluster_a10_8, small_arxiv)
        explicit = rank_static_configs(
            model_34b, cluster_a10_8, small_arxiv, objective=ServingObjective()
        )
        assert [r.config for r in default] == [r.config for r in explicit]
        assert [r.predicted_rps for r in default] == [
            r.predicted_rps for r in explicit
        ]

    def test_slo_objective_can_dethrone_the_throughput_pick(
        self, model_34b, cluster_a10_8, small_arxiv
    ):
        """A TPOT bound the throughput winner's decode iteration misses
        must hand the top slot to a compliant configuration."""
        by_thr = rank_static_configs(model_34b, cluster_a10_8, small_arxiv)
        thr_pick = by_thr[0]
        obj = ServingObjective(
            kind="slo",
            request_rate=0.3 * thr_pick.predicted_rps,
            ttft_slo=30.0,
            tpot_slo=0.07,  # between D2T4's ~56ms and D2T2P2's ~79ms
        )
        by_slo = rank_static_configs(
            model_34b, cluster_a10_8, small_arxiv, objective=obj
        )
        assert by_slo[0].config != thr_pick.config
        assert by_slo[0].predicted_attainment > 0.0
        # The dethroned throughput pick is gated to zero attainment.
        dethroned = next(r for r in by_slo if r.config == thr_pick.config)
        assert dethroned.predicted_attainment == 0.0
        assert dethroned.predicted_goodput_rps == 0.0

    def test_slo_objective_ranks_pairs_too(
        self, model_34b, cluster_a10_8, small_arxiv
    ):
        obj = ServingObjective(kind="slo", request_rate=0.2, ttft_slo=30.0)
        pairs = rank_seesaw_pairs(
            model_34b, cluster_a10_8, small_arxiv, objective=obj
        )
        assert all(p.prefill_config.dp == p.decode_config.dp for p in pairs)
        goodputs = [p.predicted_goodput_rps for p in pairs]
        assert goodputs == sorted(goodputs, reverse=True)

    def test_analytic_agrees_with_simulation_on_classification(
        self, model_34b, cluster_a10_8, small_arxiv
    ):
        """Comfortable load (analytic attainment ~1) must measure high;
        overload (analytic 0) must measure low — the cheap-search contract
        that analytic ranking points at the right region."""
        from repro.parallel.config import parse_config

        cfg = parse_config("T4P2")
        rates = rates_for(model_34b, cluster_a10_8, small_arxiv)
        workload = small_arxiv.subset(24)
        low, high = 0.1 * rates.request_rate, 3.0 * rates.request_rate
        n = small_arxiv.num_requests
        avg_in = small_arxiv.total_input_tokens / n
        avg_out = small_arxiv.total_output_tokens / n
        for rate, comfortable in ((low, True), (high, False)):
            obj = ServingObjective(kind="slo", request_rate=rate, ttft_slo=10.0)
            analytic = obj.predict(rates, avg_in, avg_out).attainment
            online = poisson_arrivals(workload, rate, seed=0)
            result = VllmLikeEngine(model_34b, cluster_a10_8, cfg).run(online)
            assert result.latency is not None
            measured = result.latency.slo_attainment(ttft_slo=10.0)
            if comfortable:
                assert analytic > 0.9 and measured > 0.75
            else:
                assert analytic == 0.0 and measured < 0.5


class TestSeesawPairOptions:
    def test_options_reach_the_simulated_reranking(
        self, model_34b, cluster_a10_8, small_arxiv, monkeypatch
    ):
        """Regression: best_seesaw_pair had no ``options`` parameter, so
        simulated re-ranking ignored arrival/router engine options."""
        import repro.core.engine as core_engine

        seen = []
        real = core_engine.SeesawEngine

        class Spy(real):
            def __init__(self, model, cluster, cp, cd, options=None):
                seen.append(options)
                super().__init__(model, cluster, cp, cd, options)

        monkeypatch.setattr(core_engine, "SeesawEngine", Spy)
        opts = SeesawOptions(max_num_seqs=17)
        best_seesaw_pair(
            model_34b,
            cluster_a10_8,
            small_arxiv,
            simulate_top=2,
            sample_requests=8,
            options=opts,
        )
        assert seen and all(o is opts for o in seen)

    def test_slo_objective_injects_arrival_rate(
        self, model_34b, cluster_a10_8, small_arxiv, monkeypatch
    ):
        """Under an SLO objective the engines used for validation are told
        the predicted arrival rate (the wait-vs-re-shard signal)."""
        import repro.core.engine as core_engine

        seen = []
        real = core_engine.SeesawEngine

        class Spy(real):
            def __init__(self, model, cluster, cp, cd, options=None):
                seen.append(options)
                super().__init__(model, cluster, cp, cd, options)

        monkeypatch.setattr(core_engine, "SeesawEngine", Spy)
        online = poisson_arrivals(small_arxiv, 0.2, seed=0)
        best_seesaw_pair(
            model_34b,
            cluster_a10_8,
            online,
            simulate_top=2,
            sample_requests=8,
            objective=ServingObjective(kind="slo", request_rate=0.2, ttft_slo=30.0),
        )
        assert seen and all(o.arrival_rate == pytest.approx(0.2) for o in seen)


class TestErlangC:
    """The M/M/c queueing correction (satellite of the coupled-sim PR)."""

    def reference(self, c, a):
        """Textbook Erlang C with explicit factorials."""
        import math

        rho = a / c
        summed = sum(a**k / math.factorial(k) for k in range(c))
        tail = a**c / (math.factorial(c) * (1.0 - rho))
        return tail / (summed + tail)

    def test_matches_textbook_formula(self):
        from repro.autotuner.objective import erlang_c

        for c in (1, 2, 3, 4, 8):
            for rho in (0.1, 0.5, 0.9):
                a = rho * c
                assert erlang_c(c, a) == pytest.approx(self.reference(c, a))

    def test_single_server_is_exactly_rho(self):
        from repro.autotuner.objective import erlang_c

        for rho in (0.0, 0.3, 0.7, 0.999):
            assert erlang_c(1, rho) == rho  # bit-exact, not approx

    def test_unstable_and_invalid(self):
        from repro.autotuner.objective import erlang_c
        from repro.errors import ConfigurationError

        assert erlang_c(4, 4.0) == 1.0
        assert erlang_c(2, 5.0) == 1.0
        with pytest.raises(ConfigurationError):
            erlang_c(0, 1.0)
        with pytest.raises(ConfigurationError):
            erlang_c(2, -0.1)

    def test_multi_server_waits_less_often_than_pooled_rho(self):
        """An arrival queues only when every replica is busy: for c > 1
        the wait probability sits strictly below the pooled model's rho."""
        from repro.autotuner.objective import erlang_c

        for c in (2, 4, 8):
            for rho in (0.2, 0.5, 0.8):
                assert erlang_c(c, rho * c) < rho

    def test_dp1_prediction_identical_to_mm1(self):
        """The dp == 1 case keeps the seed's M/M/1 numbers bit-exactly."""
        import math

        from repro.autotuner.predictor import PredictedRates
        from repro.parallel.config import parse_config

        rates = PredictedRates(
            config=parse_config("T4"),
            prefill_tokens_per_s=10000.0,
            decode_tokens_per_s=40000.0,
            request_rate=2.0,
            max_batch_size=64,
        )
        obj = ServingObjective(kind="slo", request_rate=1.3, ttft_slo=3.0)
        pred = obj.predict(rates, 2000, 200)
        mu, lam = 2.0, 1.3
        rho = lam / mu
        prefill_latency = 2000 * 1 / 10000.0
        assert pred.queue_wait_mean_s == rho / (mu - lam)
        assert pred.attainment == 1.0 - rho * math.exp(
            -(mu - lam) * (3.0 - prefill_latency)
        )

    def test_dp_group_wait_uses_erlang_c(self):
        from repro.autotuner.objective import erlang_c
        from repro.autotuner.predictor import PredictedRates
        from repro.parallel.config import parse_config

        rates = PredictedRates(
            config=parse_config("D4T2"),
            prefill_tokens_per_s=40000.0,
            decode_tokens_per_s=160000.0,
            request_rate=8.0,
            max_batch_size=64,
        )
        obj = ServingObjective(kind="slo", request_rate=5.0, ttft_slo=3.0)
        pred = obj.predict(rates, 2000, 200)
        expected = erlang_c(4, 5.0 / (8.0 / 4)) / (8.0 - 5.0)
        assert pred.queue_wait_mean_s == pytest.approx(expected)
        # Strictly below the pooled-M/M/1 wait the seed model reported.
        assert pred.queue_wait_mean_s < (5.0 / 8.0) / (8.0 - 5.0)


class TestContextGrowthAwareTpot:
    """The analytic TPOT must track measured inter-token time at high
    batch: mean context grows over a request's decode, so the iteration
    estimate averages the in -> in+out trajectory (overhead included)
    instead of evaluating one fixed context."""

    def test_analytic_tpot_gap_bounded_on_high_batch_config(
        self, tiny_model, cluster_a10_4
    ):
        from repro.parallel.config import parse_config
        from repro.workloads.synthetic import constant_workload

        cfg = parse_config("T2")
        n, prompt, output = 64, 256, 96  # one 64-deep decode batch
        measured = (
            VllmLikeEngine(tiny_model, cluster_a10_4, cfg)
            .run(constant_workload(n, prompt, output))
            .latency.tpot.mean
        )
        rates = predict_request_rate(
            tiny_model, cluster_a10_4, cfg, cfg, prompt, output, concurrency=n
        )
        assert rates.tpot_s is not None
        new_gap = abs(rates.tpot_s - measured) / measured
        # The first-order quotient (batch / decode rate, no overhead, one
        # mid-point context) under-predicts; the growth-aware estimate
        # must be strictly closer and within a tight bound.
        old_estimate = rates.max_batch_size / rates.decode_tokens_per_s
        old_gap = abs(old_estimate - measured) / measured
        assert new_gap < old_gap
        assert new_gap < 0.05

    def test_objective_consumes_growth_aware_tpot(
        self, tiny_model, cluster_a10_4
    ):
        from dataclasses import replace

        from repro.parallel.config import parse_config

        cfg = parse_config("T2")
        rates = predict_request_rate(
            tiny_model, cluster_a10_4, cfg, cfg, 256.0, 96.0
        )
        objective = ServingObjective(kind="slo", request_rate=0.1)
        pred = objective.predict(rates, 256.0, 96.0)
        assert pred.tpot_s == rates.tpot_s
        # Without the field the objective falls back to the old quotient.
        legacy = replace(rates, tpot_s=None)
        fallback = objective.predict(legacy, 256.0, 96.0)
        assert fallback.tpot_s == pytest.approx(
            rates.max_batch_size / rates.decode_tokens_per_s
        )
