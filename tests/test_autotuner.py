"""Autotuner: analytic predictor and configuration search."""

import pytest

from repro.autotuner.predictor import (
    predict_decode_rate,
    predict_prefill_rate,
    predict_request_rate,
)
from repro.autotuner.search import (
    best_seesaw_pair,
    best_static_config,
    rank_seesaw_pairs,
    rank_static_configs,
    tune_chunk_size,
)
from repro.errors import CapacityError
from repro.parallel.config import parse_config


class TestPredictor:
    def test_prefill_rate_pp_beats_tp(self, model_34b, cluster_a10_8):
        """Observation 1 at the predictor level."""
        pp8 = predict_prefill_rate(model_34b, cluster_a10_8, parse_config("P8"))
        t8 = predict_prefill_rate(model_34b, cluster_a10_8, parse_config("T8"))
        assert pp8 > 1.5 * t8

    def test_decode_rate_tp_beats_pp(self, model_34b, cluster_a10_8):
        """Observation 2 at the predictor level (modest batches)."""
        t8, _ = predict_decode_rate(
            model_34b, cluster_a10_8, parse_config("T8"), 2048, concurrency=32
        )
        p8, _ = predict_decode_rate(
            model_34b, cluster_a10_8, parse_config("P8"), 2048, concurrency=32
        )
        assert t8 > 1.5 * p8

    def test_dp_scales_batch_linearly(self, model_34b, cluster_a10_8):
        _, b1 = predict_decode_rate(model_34b, cluster_a10_8, parse_config("T4"), 2048)
        _, b2 = predict_decode_rate(
            model_34b, cluster_a10_8, parse_config("D2T4"), 2048
        )
        assert b2 == pytest.approx(2 * b1, abs=2)

    def test_concurrency_caps_batch(self, model_34b, cluster_a10_8):
        _, b = predict_decode_rate(
            model_34b, cluster_a10_8, parse_config("T4P2"), 1024, concurrency=10
        )
        assert b <= 10

    def test_request_rate_positive(self, model_34b, cluster_a10_8):
        rates = predict_request_rate(
            model_34b,
            cluster_a10_8,
            parse_config("P8"),
            parse_config("T4P2"),
            3000,
            200,
        )
        assert rates.request_rate > 0
        assert rates.max_batch_size >= 1

    def test_request_rate_validates(self, model_34b, cluster_a10_8):
        with pytest.raises(CapacityError):
            predict_request_rate(
                model_34b,
                cluster_a10_8,
                parse_config("P8"),
                parse_config("T4P2"),
                0,
                10,
            )


class TestSearch:
    def test_rank_static_sorted(self, model_34b, cluster_a10_8, small_arxiv):
        ranked = rank_static_configs(model_34b, cluster_a10_8, small_arxiv)
        rates = [r.predicted_rps for r in ranked]
        assert rates == sorted(rates, reverse=True)
        assert all(r.config.num_gpus == 8 for r in ranked)

    def test_rank_pairs_dp_matched(self, model_34b, cluster_a10_8, small_arxiv):
        pairs = rank_seesaw_pairs(model_34b, cluster_a10_8, small_arxiv)
        assert all(p.prefill_config.dp == p.decode_config.dp for p in pairs)

    def test_best_static_feasible(self, model_70b, cluster_a10_8, small_arxiv):
        cfg = best_static_config(model_70b, cluster_a10_8, small_arxiv)
        assert cfg.num_gpus == 8
        assert cfg.tp * cfg.pp >= 8  # 70B needs the full machine per replica

    def test_best_pair_prefers_pp_prefill_tp_decode_for_arxiv(
        self, model_34b, cluster_a10_8, small_arxiv
    ):
        cp, cd = best_seesaw_pair(model_34b, cluster_a10_8, small_arxiv)
        # Prefill side should use less TP than decode side (the paper's
        # central finding); allow equality only on TP.
        assert cp.tp <= cd.tp
        assert cp.pp >= cd.pp

    def test_simulated_validation_runs(self, model_34b, cluster_a10_8, small_arxiv):
        cfg = best_static_config(
            model_34b, cluster_a10_8, small_arxiv, simulate_top=2, sample_requests=12
        )
        assert cfg.num_gpus == 8

    def test_tune_chunk_size_returns_candidate(
        self, model_34b, cluster_a10_8, small_arxiv
    ):
        size = tune_chunk_size(
            model_34b,
            cluster_a10_8,
            parse_config("T2P2D2"),
            small_arxiv,
            candidates=(512, 2048),
            sample_requests=8,
        )
        assert size in (512, 2048)

    def test_infeasible_model_raises(self, model_70b, cluster_a10_4, small_arxiv):
        with pytest.raises(CapacityError):
            rank_static_configs(model_70b, cluster_a10_4, small_arxiv)
