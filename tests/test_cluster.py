"""The event-coupled cluster simulator.

Contracts pinned by this PR:

1. **Golden equivalence** — ``coupled=True`` with the ``static`` policy
   reproduces the decoupled per-replica results bit-exactly on offline
   (t=0) workloads, for every engine (the replica event loops are the
   same generators, so totals, phase times, iteration counts and latency
   records all match).
2. **Observed JSQ property** — the coupled ``jsq`` policy never
   dispatches to a replica showing strictly more observed queued prefill
   tokens than another replica at the decision instant.
3. **Stepping interface** — ``start_replica`` exposes
   ``next_event_time()`` / ``advance(until)`` / ``inject`` with a
   monotone clock and event-at-a-time execution.
4. **Observed storms** — measured preemptions re-dispatch still-pending
   requests to a calm replica.
5. **Acceptance** — ``coupled_sweep`` shows observed-load routing
   beating its decoupled counterpart under bursty arrivals on at least
   one swept load point.
"""

import math

import pytest

from repro.cluster import ClusterSimulator
from repro.core.engine import SeesawEngine
from repro.core.options import SeesawOptions
from repro.engines.base import EngineOptions
from repro.engines.decode_prioritized import DecodePrioritizedEngine
from repro.engines.disaggregated import DisaggregatedEngine, DisaggregationPlan
from repro.engines.vllm_like import VllmLikeEngine
from repro.experiments.coupled_sweep import run_coupled_sweep
from repro.models.registry import get_model
from repro.parallel.config import parse_config, parse_transition
from repro.routing.policies import DEFAULT_STORM_PREEMPTIONS
from repro.runtime.request import Request
from repro.workloads.arrivals import bursty_arrivals, poisson_arrivals
from repro.workloads.datasets import sharegpt_workload
from repro.workloads.synthetic import bimodal_workload, constant_workload


def assert_identical(decoupled, coupled):
    assert coupled.total_time == decoupled.total_time
    assert coupled.phase_time == decoupled.phase_time
    assert coupled.iterations == decoupled.iterations
    assert coupled.transitions == decoupled.transitions
    assert coupled.num_requests == decoupled.num_requests
    assert (coupled.latency is None) == (decoupled.latency is None)
    if coupled.latency is not None:
        for attr in ("ttft", "e2e", "queue_delay"):
            assert getattr(coupled.latency, attr).p99 == getattr(
                decoupled.latency, attr
            ).p99
    assert coupled.router is not None and coupled.router.coupled


class TestGoldenEquivalence:
    """--coupled + static == the decoupled path, engine by engine."""

    def run_pair(self, make_engine, workload):
        return (
            make_engine(EngineOptions(coupled=False)).run(workload),
            make_engine(EngineOptions(coupled=True)).run(workload),
        )

    def test_vllm_dp_offline(self, tiny_model, cluster_a10_4):
        wl = sharegpt_workload(40, seed=7)
        dec, cpl = self.run_pair(
            lambda o: VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("D2T2"), o),
            wl,
        )
        assert_identical(dec, cpl)

    def test_vllm_chunked_offline(self, tiny_model, cluster_a10_4):
        wl = sharegpt_workload(40, seed=7)
        mk = lambda c: VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("D2T2"),
            EngineOptions(coupled=c, chunked_prefill=True, chunk_size=512),
        )
        assert_identical(mk(False).run(wl), mk(True).run(wl))

    def test_decode_prioritized_offline(self, tiny_model, cluster_a10_4):
        wl = sharegpt_workload(40, seed=7)
        dec, cpl = self.run_pair(
            lambda o: DecodePrioritizedEngine(
                tiny_model, cluster_a10_4, parse_config("D2T2"), o
            ),
            wl,
        )
        assert_identical(dec, cpl)

    def test_seesaw_offline(self, tiny_model, cluster_a10_4):
        wl = sharegpt_workload(40, seed=7)
        cp, cd = parse_transition("D2P2->D2T2")
        mk = lambda c: SeesawEngine(
            tiny_model, cluster_a10_4, cp, cd, SeesawOptions(coupled=c)
        )
        assert_identical(mk(False).run(wl), mk(True).run(wl))

    def test_disaggregated_offline(self, tiny_model, cluster_a10_4):
        wl = constant_workload(16, 256, 32)
        plan = DisaggregationPlan(
            prefill_config=parse_config("D2"), decode_config=parse_config("D2")
        )
        mk = lambda c: DisaggregatedEngine(
            tiny_model, cluster_a10_4, plan, EngineOptions(coupled=c)
        )
        assert_identical(mk(False).run(wl), mk(True).run(wl))

    def test_vllm_static_online_equivalent(self, tiny_model, cluster_a10_4):
        """Static membership is index-based, so even under live arrivals
        coupled co-simulation reproduces the decoupled replica runs."""
        wl = bursty_arrivals(bimodal_workload(32), 8.0, burstiness=8.0, seed=11)
        dec, cpl = self.run_pair(
            lambda o: VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("D2T2"), o),
            wl,
        )
        assert_identical(dec, cpl)

    def test_single_replica_coupled(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(constant_workload(12, 256, 16), 4.0, seed=1)
        dec, cpl = self.run_pair(
            lambda o: VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2"), o),
            wl,
        )
        assert_identical(dec, cpl)


class TestObservedJSQ:
    @pytest.mark.filterwarnings("ignore::DeprecationWarning")  # uses the alias on purpose
    def test_never_picks_a_strictly_longer_queue(self, tiny_model, cluster_a10_4):
        """Property: every coupled-jsq dispatch goes to a replica whose
        observed queued-prefill depth is minimal at that instant."""
        wl = bursty_arrivals(bimodal_workload(48), 10.0, burstiness=8.0, seed=3)
        engine = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("D2T2"),
            EngineOptions(coupled=True, router="jsq", debug_dispatch_log=True),
        )
        sim = ClusterSimulator(engine, list(wl.requests))
        sim.run()
        assert sim.dispatch_log  # one entry per dispatch
        for _req_id, rid, queues in sim.dispatch_log:
            assert queues[rid] <= min(queues) + 1e-9

    def test_jsq_flattens_token_imbalance_vs_static(self, tiny_model, cluster_a10_4):
        """On the round-robin-adversarial bimodal workload the observed
        jsq spreads dispatched tokens more evenly than the static deal."""
        wl = bursty_arrivals(bimodal_workload(48), 10.0, burstiness=8.0, seed=3)
        run = lambda policy: VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("D2T2"),
            EngineOptions(coupled=True, router=policy),
        ).run(wl)
        static = run("static").router
        jsq = run("jsq").router
        assert jsq is not None and static is not None
        assert jsq.token_imbalance <= static.token_imbalance


class TestSteppingInterface:
    def test_replica_sim_steps_and_injects(self, tiny_model, cluster_a10_4):
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2"))
        sim = engine.start_replica(0)
        assert math.isinf(sim.next_event_time())  # nothing injected yet
        sim.inject(Request(0, 256, 8, arrival_time=1.0))
        assert sim.next_event_time() == 1.0
        sim.advance(0.5)
        assert sim.clock == 0.0  # arrival still in the future
        sim.advance(2.0)
        assert sim.clock >= 1.0  # idle jump + first iterations executed
        # A later arrival re-arms the loop after exhaustion.
        sim.finish()
        drained_clock = sim.clock
        assert math.isinf(sim.next_event_time())
        sim.inject(Request(1, 256, 8, arrival_time=drained_clock + 5.0))
        assert sim.next_event_time() == pytest.approx(drained_clock + 5.0)
        sim.finish()
        assert sim.clock > drained_clock + 5.0
        assert len(sim.run.state.finished) == 2
        assert sim.idle_time() > 0  # both arrival gaps were slept through

    def test_clock_monotone_under_advance(self, tiny_model, cluster_a10_4):
        engine = VllmLikeEngine(tiny_model, cluster_a10_4, parse_config("T2"))
        sim = engine.start_replica(0)
        for i, t in enumerate((0.0, 0.1, 0.5, 2.0)):
            sim.advance(t)
            sim.inject(Request(i, 512, 16, arrival_time=t))
        clocks = []
        while not math.isinf(sim.next_event_time()):
            sim._step()
            clocks.append(sim.clock)
        assert clocks == sorted(clocks)


class TestObservedStorms:
    def test_redispatch_moves_pending_to_calm_replica(
        self, tiny_model, cluster_a10_4
    ):
        """A replica whose *measured* preemption count crossed the storm
        threshold loses every request its scheduler has not yet seen."""
        reqs = [
            Request(i, 200, 4, arrival_time=float(i)) for i in range(6)
        ]
        engine = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("D2T2"),
            EngineOptions(coupled=True, router="jsq"),
        )
        sim = ClusterSimulator(engine, reqs)
        src = sim.sims[0]
        for r in reqs[:3]:
            src.inject(r)
        # Mark the replica as storming via the engines' measured counter.
        src.run.metrics.preemptions = DEFAULT_STORM_PREEMPTIONS
        moved = sim._redispatch_storms(0.0)
        assert moved == 3
        assert not src.run.state.pending
        assert not src.run.requests
        target = sim.sims[1]
        assert len(target.run.requests) == 3
        assert target.redispatched_in == 3
        # The watermark reset: the same preemptions do not re-trigger.
        assert sim._redispatch_storms(0.0) == 0

    def test_static_policy_never_redispatches(self, tiny_model, cluster_a10_4):
        wl = bursty_arrivals(bimodal_workload(24), 8.0, burstiness=8.0, seed=5)
        r = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("D2T2"),
            EngineOptions(coupled=True, router="static"),
        ).run(wl)
        assert r.router is not None
        assert r.router.redispatched_requests == 0


class TestCoupledStats:
    def test_coupled_stats_carried_through_result(self, tiny_model, cluster_a10_4):
        wl = bursty_arrivals(bimodal_workload(24), 8.0, burstiness=8.0, seed=5)
        r = VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("D2T2"),
            EngineOptions(coupled=True, router="jsq"),
        ).run(wl)
        stats = r.router
        assert stats is not None and stats.coupled
        assert stats.num_requests == 24
        assert stats.idle_fraction is not None
        assert len(stats.idle_fraction) == 2
        assert all(0.0 <= f <= 1.0 for f in stats.idle_fraction)
        assert stats.observed_preemptions is not None
        assert "idle" in stats.describe()

    def test_observed_preemptions_measured_on_pressure(self):
        """A KV-tight DP cell under a long-output burst shows *measured*
        preemptions in the coupled stats (the decoupled ledger predicts
        none here — the gap the coupled router exists to close)."""
        model = get_model("13b")
        from repro.hardware.cluster import make_cluster

        cluster = make_cluster("A10", 8)
        wl = bimodal_workload(40, long_prompt=6144, short_prompt=512, output_len=768)
        online = bursty_arrivals(wl, 0.29, burstiness=10.0, seed=0)
        run = lambda c: VllmLikeEngine(
            model,
            cluster,
            parse_config("D4T2"),
            EngineOptions(coupled=c, router="jsq", router_seed=0),
        ).run(online)
        coupled = run(True)
        decoupled = run(False)
        assert coupled.router is not None and decoupled.router is not None
        assert coupled.router.total_observed_preemptions > 0
        assert decoupled.router.total_predicted_preemptions == 0


class TestCoupledSweepAcceptance:
    def test_observed_routing_beats_planned_on_a_load_point(self):
        """Acceptance: under bursty arrivals, observed-load dispatch wins
        on p99 TTFT or SLO attainment at one swept load point."""
        sweep = run_coupled_sweep(
            policies=("slo",), load_fractions=(1.1,), num_requests=40, seed=0
        )
        wins = sweep.observed_wins()
        assert wins, "coupled slo should beat planned slo at 1.1x load"
        win = wins[0]
        planned = sweep.point(win.load_fraction, win.policy, coupled=False)
        assert (
            win.ttft_p99 < planned.ttft_p99
            or win.attainment(sweep.ttft_slo) > planned.attainment(sweep.ttft_slo)
        )
