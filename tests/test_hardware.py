"""GPU specs, interconnect models, cluster construction."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec, make_cluster
from repro.hardware.gpu import GPU_REGISTRY, GPUSpec, get_gpu, register_gpu
from repro.hardware.interconnect import (
    NVLINK_A100,
    PCIE_4_X8,
    allreduce_bandwidth,
    allreduce_time,
    p2p_time,
)
from repro.utils.units import GB, GIB, MIB


class TestGPURegistry:
    def test_table1_entries_present(self):
        for name in ("A10", "L4", "A100-SXM", "A100-PCIE"):
            assert name in GPU_REGISTRY

    def test_table1_values(self):
        a10 = get_gpu("A10")
        assert a10.memory_bytes == 24 * GIB
        assert a10.hbm_bandwidth == 600 * GB
        assert a10.flops == pytest.approx(125e12)
        assert not a10.has_nvlink
        a100 = get_gpu("a100-sxm")  # case-insensitive
        assert a100.has_nvlink

    def test_unknown_gpu_raises(self):
        with pytest.raises(ConfigurationError):
            get_gpu("H100")

    def test_register_duplicate_rejected(self):
        with pytest.raises(ConfigurationError):
            register_gpu(get_gpu("A10"))

    def test_effective_rates_below_peak(self):
        g = get_gpu("L4")
        assert g.effective_flops < g.flops
        assert g.effective_bandwidth < g.hbm_bandwidth

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            GPUSpec(name="bad", memory_bytes=0, hbm_bandwidth=1, flops=1, has_nvlink=False)
        with pytest.raises(ConfigurationError):
            GPUSpec(
                name="bad2",
                memory_bytes=1,
                hbm_bandwidth=1,
                flops=1,
                has_nvlink=False,
                compute_efficiency=1.5,
            )

    def test_with_overrides(self):
        g = get_gpu("A10").with_overrides(flops=200e12)
        assert g.flops == pytest.approx(200e12)
        assert g.memory_bytes == 24 * GIB


class TestAllreduce:
    def test_zero_size_is_free(self):
        assert allreduce_time(PCIE_4_X8, 0, 8) == 0.0

    def test_single_participant_is_free(self):
        assert allreduce_time(PCIE_4_X8, 1 * MIB, 1) == 0.0

    def test_monotone_in_size(self):
        t1 = allreduce_time(PCIE_4_X8, 1 * MIB, 4)
        t2 = allreduce_time(PCIE_4_X8, 2 * MIB, 4)
        assert t2 > t1

    def test_bandwidth_decreases_with_participants(self):
        """The paper's Observation 1: all-reduce bandwidth (size/time) is
        monotonically decreasing in the number of GPUs."""
        size = 64 * MIB
        bws = [allreduce_bandwidth(PCIE_4_X8, size, n) for n in (2, 4, 8)]
        assert bws[0] > bws[1] > bws[2]

    def test_nvlink_much_faster_than_pcie(self):
        size = 64 * MIB
        assert allreduce_time(NVLINK_A100, size, 8) < allreduce_time(
            PCIE_4_X8, size, 8
        ) / 10

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            allreduce_time(PCIE_4_X8, -1, 4)

    def test_bandwidth_scale(self):
        scaled = PCIE_4_X8.scaled(2.0)
        assert allreduce_time(scaled, 64 * MIB, 4) < allreduce_time(
            PCIE_4_X8, 64 * MIB, 4
        )

    def test_scaled_composes(self):
        assert PCIE_4_X8.scaled(2.0).scaled(3.0).bandwidth_scale == pytest.approx(6.0)


class TestP2P:
    def test_zero_free(self):
        assert p2p_time(PCIE_4_X8, 0) == 0.0

    def test_includes_latency(self):
        assert p2p_time(PCIE_4_X8, 1) >= PCIE_4_X8.latency

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            p2p_time(PCIE_4_X8, -5)


class TestCluster:
    def test_make_cluster_picks_fabric(self):
        assert make_cluster("A10", 8).fabric.name == "pcie4-x8"
        assert make_cluster("A100-SXM", 8).fabric.name == "nvlink-a100"
        assert make_cluster("A100-PCIE", 8).fabric.name == "pcie4-x8"

    def test_totals(self):
        c = make_cluster("A10", 4)
        assert c.total_gpu_memory == 4 * 24 * GIB
        assert c.total_cpu_buffer == 4 * 80 * GIB

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(gpu=get_gpu("A10"), num_gpus=0, fabric=PCIE_4_X8)

    def test_scaled_bandwidth_copy(self):
        c = make_cluster("A10", 8)
        c2 = c.scaled_bandwidth(5.0)
        assert c2.fabric.bandwidth_scale == pytest.approx(5.0)
        assert c.fabric.bandwidth_scale == pytest.approx(1.0)

    def test_describe_mentions_gpu(self):
        assert "A10" in make_cluster("A10", 8).describe()

    def test_effective_host_bandwidth_below_link(self):
        c = make_cluster("A10", 8)
        assert c.effective_host_bandwidth < c.host_link_bandwidth
