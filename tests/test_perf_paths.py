"""The fast shared-clock core, pinned against its reference paths.

Contracts:

1. **Heap == linear scan** — the lazy min-heap event loop of
   :class:`ClusterSimulator` produces bit-identical
   :class:`EngineResult`s to the exhaustive next-event scan
   (``use_heap=False``), across engines, routers and autoscalers: the
   heap is pure dispatch mechanics, never policy.
2. **Vector == scalar** — the numpy decode-slot path
   (``EngineOptions.vectorize``) is bit-identical to the object path on
   online coupled cells, including preemption-heavy ones.
3. **Fluid calibration** — the mean-field fast path tracks the event
   path on the calibration cells: p99 TTFT within 10%, makespan within
   10% on the fixed fleet; on the autoscaled cell the scale decisions
   match exactly and billed replica-seconds stay within 15%.
4. **Auto fidelity** — ``fidelity=auto`` picks the event path below the
   work-volume threshold (small cells keep full fidelity).
5. **Bench harness** — the perf cells run scaled-down and the
   regression check normalizes by the calibration spin.
"""

from repro.bench import CELLS, check_measurement, run_cell
from repro.cluster import ClusterSimulator
from repro.cluster.fluid import AUTO_FLUID_WORK_ITEMS
from repro.core.engine import SeesawEngine
from repro.core.options import SeesawOptions
from repro.engines.base import EngineOptions
from repro.engines.decode_prioritized import DecodePrioritizedEngine
from repro.engines.vllm_like import VllmLikeEngine
from repro.hardware.cluster import make_cluster
from repro.models.registry import get_model
from repro.parallel.config import ParallelConfig, parse_config, parse_transition
from repro.workloads.arrivals import (
    bursty_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
)
from repro.workloads.datasets import sharegpt_workload


def assert_bit_identical(a, b) -> None:
    """Full EngineResult equality, with readable failures first."""
    assert a.total_time == b.total_time
    assert a.iterations == b.iterations
    assert a.phase_time == b.phase_time
    if a.latency is not None:
        assert a.latency.records == b.latency.records
    if a.router is not None:
        assert a.router == b.router
    assert a == b


class TestHeapEventLoop:
    """Heap-driven dispatch == exhaustive next-event scan, bit for bit."""

    def run_pair(self, make_engine, workload):
        reqs = list(workload.requests)
        linear = ClusterSimulator(make_engine(), reqs, use_heap=False).run()
        heap = ClusterSimulator(make_engine(), reqs, use_heap=True).run()
        return linear, heap

    def test_vllm_jsq_poisson(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(sharegpt_workload(120, seed=3), 6.0, seed=3)
        linear, heap = self.run_pair(
            lambda: VllmLikeEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("D2T2"),
                EngineOptions(router="jsq", coupled=True),
            ),
            wl,
        )
        assert_bit_identical(linear, heap)

    def test_vllm_least_work_bursty(self, tiny_model, cluster_a10_4):
        wl = bursty_arrivals(sharegpt_workload(100, seed=5), 8.0, burstiness=6.0, seed=5)
        linear, heap = self.run_pair(
            lambda: VllmLikeEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("D2T2"),
                EngineOptions(router="least-work", coupled=True),
            ),
            wl,
        )
        assert_bit_identical(linear, heap)

    def test_decode_prioritized_po2(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(sharegpt_workload(80, seed=9), 6.0, seed=9)
        linear, heap = self.run_pair(
            lambda: DecodePrioritizedEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("D2T2"),
                EngineOptions(router="po2", router_seed=9, coupled=True),
            ),
            wl,
        )
        assert_bit_identical(linear, heap)

    def test_seesaw_jsq(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(sharegpt_workload(60, seed=13), 4.0, seed=13)
        cp, cd = parse_transition("D2P2->D2T2")
        linear, heap = self.run_pair(
            lambda: SeesawEngine(
                tiny_model,
                cluster_a10_4,
                cp,
                cd,
                SeesawOptions(router="jsq", coupled=True),
            ),
            wl,
        )
        assert_bit_identical(linear, heap)

    def test_vllm_threshold_autoscaled(self, tiny_model, cluster_a10_4):
        wl = diurnal_arrivals(
            sharegpt_workload(120, seed=17), rate_rps=5.0, period_s=20.0, seed=17
        )
        linear, heap = self.run_pair(
            lambda: VllmLikeEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("D2T2"),
                EngineOptions(
                    router="jsq",
                    coupled=True,
                    autoscaler="threshold",
                    min_dp=1,
                    max_dp=2,
                ),
            ),
            wl,
        )
        assert_bit_identical(linear, heap)

    def test_vllm_predictive_autoscaled(self, tiny_model, cluster_a10_4):
        wl = diurnal_arrivals(
            sharegpt_workload(120, seed=19), rate_rps=5.0, period_s=20.0, seed=19
        )
        linear, heap = self.run_pair(
            lambda: VllmLikeEngine(
                tiny_model,
                cluster_a10_4,
                parse_config("D2T2"),
                EngineOptions(
                    router="jsq",
                    coupled=True,
                    autoscaler="predictive",
                    min_dp=1,
                    max_dp=2,
                    ttft_slo=5.0,
                ),
            ),
            wl,
        )
        assert_bit_identical(linear, heap)


class TestScalarVectorEquivalence:
    """The numpy decode-slot path never changes a single result."""

    def run_pair(self, make_engine, workload):
        scalar = make_engine(EngineOptions(router="jsq", coupled=True, vectorize=False))
        vector = make_engine(EngineOptions(router="jsq", coupled=True, vectorize=True))
        return scalar.run(workload), vector.run(workload)

    def test_vllm_online(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(sharegpt_workload(150, seed=7), 8.0, seed=7)
        scalar, vector = self.run_pair(
            lambda o: VllmLikeEngine(
                tiny_model, cluster_a10_4, parse_config("D2T2"), o
            ),
            wl,
        )
        assert_bit_identical(scalar, vector)

    def test_vllm_preemption_heavy(self, tiny_model):
        # A single cramped replica: bursts overflow KV and force the
        # grow/preempt fallback; the slot path must hand over and return
        # without drifting a counter.
        cluster = make_cluster("A10", 1)
        wl = bursty_arrivals(
            sharegpt_workload(120, seed=23), 12.0, burstiness=8.0, seed=23
        )
        scalar, vector = self.run_pair(
            lambda o: VllmLikeEngine(tiny_model, cluster, parse_config("T1"), o),
            wl,
        )
        if scalar.router is not None:
            assert scalar.router.observed_preemptions == (
                vector.router.observed_preemptions
            )
        assert_bit_identical(scalar, vector)

    def test_seesaw_online(self, tiny_model, cluster_a10_4):
        wl = poisson_arrivals(sharegpt_workload(80, seed=29), 6.0, seed=29)
        cp, cd = parse_transition("D2P2->D2T2")
        mk = lambda vec: SeesawEngine(
            tiny_model,
            cluster_a10_4,
            cp,
            cd,
            SeesawOptions(router="jsq", coupled=True, vectorize=vec),
        )
        assert_bit_identical(mk(False).run(wl), mk(True).run(wl))

    def test_admission_scan_offline(self, tiny_model, cluster_a10_4):
        # Offline deal: the waiting queue is deep from t=0, so the
        # cumulative-sum admission scan is on the hot path every wave.
        wl = sharegpt_workload(120, seed=13)
        mk = lambda vec: VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("T2P2"),
            EngineOptions(vectorize=vec),
        )
        assert_bit_identical(mk(False).run(wl), mk(True).run(wl))

    def test_admission_scan_budget_and_kv_breaks(self, tiny_model):
        # A cramped single replica exercises every break arm of the
        # scalar scan: seq cap, budget overflow (first prompt exempt),
        # and KV-block exhaustion mid-window.
        cluster = make_cluster("A10", 1)
        wl = bursty_arrivals(
            sharegpt_workload(100, seed=31), 16.0, burstiness=8.0, seed=31
        )
        mk = lambda vec: VllmLikeEngine(
            tiny_model,
            cluster,
            parse_config("T1"),
            EngineOptions(vectorize=vec, max_num_seqs=24, max_batched_tokens=2048),
        )
        assert_bit_identical(mk(False).run(wl), mk(True).run(wl))

    def test_admission_scan_below_window_uses_scalar(self, tiny_model, cluster_a10_4):
        # Tiny queues stay on the scalar path (VECTORIZE_MIN_SEQS gate)
        # and still match a forced-scalar run.
        from repro.workloads.synthetic import constant_workload

        wl = constant_workload(3, 256, 16)
        mk = lambda vec: VllmLikeEngine(
            tiny_model,
            cluster_a10_4,
            parse_config("T2P2"),
            EngineOptions(vectorize=vec),
        )
        assert_bit_identical(mk(False).run(wl), mk(True).run(wl))


class TestFluidCalibration:
    """The fluid fast path against the event path on the fixed
    calibration cells (the tolerances are the published fidelity
    contract — see README 'Performance & fidelity tiers')."""

    def _run(self, fidelity, reqs, **opts):
        eng = VllmLikeEngine(
            get_model("15b"),
            make_cluster("A10", 8),
            ParallelConfig(dp=4, tp=2, pp=1),
            EngineOptions(router="jsq", coupled=True, fidelity=fidelity, **opts),
        )
        return eng.run(reqs)

    def test_fixed_fleet_poisson(self):
        reqs = poisson_arrivals(sharegpt_workload(2000, seed=7), 8.0, seed=7)
        event = self._run("event", reqs)
        fluid = self._run("fluid", reqs)
        ttft_ratio = fluid.latency.ttft.p99 / event.latency.ttft.p99
        assert abs(ttft_ratio - 1.0) <= 0.10
        assert abs(fluid.total_time / event.total_time - 1.0) <= 0.10

    def test_autoscaled_diurnal_predictive(self):
        reqs = diurnal_arrivals(
            sharegpt_workload(2000, seed=11), rate_rps=6.0, period_s=240.0, seed=11
        )
        kw = dict(autoscaler="predictive", min_dp=1, max_dp=4, ttft_slo=2.0)
        event = self._run("event", reqs, **kw)
        fluid = self._run("fluid", reqs, **kw)
        ttft_ratio = fluid.latency.ttft.p99 / event.latency.ttft.p99
        assert abs(ttft_ratio - 1.0) <= 0.10
        ev_fleet, fl_fleet = event.router.fleet, fluid.router.fleet
        assert fl_fleet.scale_ups == ev_fleet.scale_ups
        assert fl_fleet.scale_downs == ev_fleet.scale_downs
        assert abs(fl_fleet.replica_seconds / ev_fleet.replica_seconds - 1.0) <= 0.15

    def test_auto_picks_event_below_threshold(self):
        reqs = poisson_arrivals(sharegpt_workload(200, seed=7), 8.0, seed=7)
        assert len(reqs.requests) * 1 < AUTO_FLUID_WORK_ITEMS
        event = self._run("event", reqs)
        auto = self._run("auto", reqs)
        assert auto.iterations == event.iterations
        assert auto.latency.records == event.latency.records


class TestBenchHarness:
    def test_cells_registry(self):
        assert set(CELLS) == {
            "offline_static",
            "coupled_jsq",
            "autoscaled_diurnal",
            "fluid_million",
            "sweep_parallel",
        }

    def test_sweep_parallel_cell_asserts_bit_exactness(self):
        record = run_cell("sweep_parallel", scale=0.05, jobs=2)
        assert record["cell"] == "sweep_parallel"
        assert record["work_kind"] == "cells"
        assert record["work_items"] == 8
        assert record["jobs"] == 2
        assert record["serial_wall_s"] > 0 and record["wall_s"] > 0
        assert record["speedup"] > 0
        assert record["child_peak_rss_mb"] > 0  # workers reported their RSS

    def test_scaled_cell_runs(self):
        record = run_cell("coupled_jsq", scale=0.02)
        assert record["cell"] == "coupled_jsq"
        assert record["work_kind"] == "iterations"
        assert record["work_items"] > 0
        assert record["wall_s"] > 0
        assert record["peak_rss_mb"] > 0

    def test_check_normalizes_by_spin(self):
        baseline = {"wall_s": 1.0, "calib_s": 0.1}
        # Same machine speed, 20% slower run: inside the 25% budget.
        ok, _ = check_measurement({"wall_s": 1.2}, baseline, calib_s=0.1)
        assert ok
        # Same machine speed, 30% slower run: regression.
        ok, _ = check_measurement({"wall_s": 1.3}, baseline, calib_s=0.1)
        assert not ok
        # Machine half as fast (spin doubled): the budget doubles too.
        ok, _ = check_measurement({"wall_s": 2.4}, baseline, calib_s=0.2)
        assert ok
