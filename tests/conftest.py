"""Shared fixtures: small model/cluster/workloads that keep tests fast."""

from __future__ import annotations

import pytest

from repro.hardware.cluster import make_cluster
from repro.models.config import ModelConfig
from repro.models.registry import get_model
from repro.parallel.config import ParallelConfig
from repro.workloads.datasets import arxiv_workload, sharegpt_workload
from repro.workloads.synthetic import constant_workload


@pytest.fixture(scope="session")
def tiny_model() -> ModelConfig:
    """A small but structurally complete GQA model (fast engine runs)."""
    return ModelConfig(
        name="tiny-2b",
        num_layers=16,
        hidden_size=2048,
        num_heads=16,
        num_kv_heads=4,
        intermediate_size=5504,
        vocab_size=32000,
    )


@pytest.fixture(scope="session")
def model_34b() -> ModelConfig:
    return get_model("34b")


@pytest.fixture(scope="session")
def model_70b() -> ModelConfig:
    return get_model("70b")


@pytest.fixture(scope="session")
def cluster_a10_8():
    return make_cluster("A10", 8)


@pytest.fixture(scope="session")
def cluster_a10_4():
    return make_cluster("A10", 4)


@pytest.fixture(scope="session")
def cluster_l4_8():
    return make_cluster("L4", 8)


@pytest.fixture(scope="session")
def small_const_workload():
    return constant_workload(24, prompt_len=512, output_len=64)


@pytest.fixture(scope="session")
def small_arxiv():
    return arxiv_workload(40, seed=7)


@pytest.fixture(scope="session")
def small_sharegpt():
    return sharegpt_workload(80, seed=7)


@pytest.fixture(scope="session")
def cfg_t4p2() -> ParallelConfig:
    return ParallelConfig(tp=4, pp=2)


@pytest.fixture(scope="session")
def cfg_p8() -> ParallelConfig:
    return ParallelConfig(tp=1, pp=8)
