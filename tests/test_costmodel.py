"""Roofline cost model: breakdowns, layer time, pipeline, transfer, step."""

import pytest

from repro.costmodel.breakdown import Breakdown
from repro.costmodel.pipeline import (
    pipeline_time,
    pipeline_time_heterogeneous,
    steady_state_period,
)
from repro.costmodel.roofline import layer_time
from repro.costmodel.step import StepCostModel
from repro.costmodel.transfer import KVLayout, TransferModel
from repro.errors import ConfigurationError
from repro.parallel.config import parse_config


class TestBreakdown:
    def test_total_roofline(self):
        b = Breakdown(linear_dm=2, linear_comp=1, attn_dm=1, attn_comp=3, comm=0.5, overhead=0.1)
        assert b.total == pytest.approx(2 + 3 + 0.5 + 0.1)

    def test_add_and_scale(self):
        b = Breakdown(linear_dm=1, comm=2)
        s = (b + b).scale(0.5)
        assert s.linear_dm == pytest.approx(1)
        assert s.comm == pytest.approx(2)

    def test_attribution_bandwidth_bound(self):
        b = Breakdown(linear_dm=5, linear_comp=1, comm=2)
        att = b.attributed()
        assert att["weight_transfer"] == pytest.approx(5)
        assert att["communication"] == pytest.approx(2)

    def test_attribution_compute_bound(self):
        b = Breakdown(linear_dm=1, linear_comp=5)
        att = b.attributed()
        assert att["weight_transfer"] == 0.0
        assert att["compute"] == pytest.approx(5)

    def test_as_dict_has_total(self):
        assert "total" in Breakdown().as_dict()


class TestLayerTime:
    @pytest.fixture
    def setup(self, model_34b, cluster_a10_8):
        return model_34b, cluster_a10_8.gpu, cluster_a10_8.fabric

    def test_zero_tokens_free(self, setup):
        m, g, f = setup
        b = layer_time(m, g, f, 1, new_tokens=0, context_tokens=0, sum_sq_seq_len=0, phase="decode")
        assert b.total == 0.0

    def test_unknown_phase(self, setup):
        m, g, f = setup
        with pytest.raises(ConfigurationError):
            layer_time(m, g, f, 1, new_tokens=1, context_tokens=0, sum_sq_seq_len=0, phase="train")

    def test_tp_shards_weights(self, setup):
        m, g, f = setup
        b1 = layer_time(m, g, f, 1, new_tokens=8, context_tokens=8000, sum_sq_seq_len=0, phase="decode")
        b4 = layer_time(m, g, f, 4, new_tokens=8, context_tokens=8000, sum_sq_seq_len=0, phase="decode")
        assert b4.linear_dm == pytest.approx(b1.linear_dm / 4)

    def test_tp1_has_no_comm(self, setup):
        m, g, f = setup
        b = layer_time(m, g, f, 1, new_tokens=100, context_tokens=0, sum_sq_seq_len=100 * 100, phase="prefill")
        assert b.comm == 0.0

    def test_comm_grows_with_tp(self, setup):
        m, g, f = setup
        kw = dict(new_tokens=4096, context_tokens=0, sum_sq_seq_len=4096.0**2, phase="prefill")
        b2 = layer_time(m, g, f, 2, **kw)
        b8 = layer_time(m, g, f, 8, **kw)
        assert b8.comm > b2.comm

    def test_decode_is_bandwidth_bound_small_batch(self, setup):
        m, g, f = setup
        b = layer_time(m, g, f, 1, new_tokens=4, context_tokens=4000, sum_sq_seq_len=0, phase="decode")
        assert b.linear_dm > b.linear_comp

    def test_prefill_is_compute_bound(self, setup):
        m, g, f = setup
        b = layer_time(m, g, f, 1, new_tokens=8192, context_tokens=0, sum_sq_seq_len=8192.0**2, phase="prefill")
        assert b.linear_comp > b.linear_dm


class TestPipeline:
    def test_formula(self):
        assert pipeline_time(1.0, 4, 4) == pytest.approx(7.0)

    def test_zero_microbatches(self):
        assert pipeline_time(1.0, 4, 0) == 0.0

    def test_heterogeneous_matches_uniform(self):
        assert pipeline_time_heterogeneous([1.0] * 4, 4) == pytest.approx(
            pipeline_time(1.0, 4, 4)
        )

    def test_steady_state_period(self):
        assert steady_state_period(0.5, 4) == pytest.approx(2.0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            pipeline_time(1.0, 0, 1)


class TestTransferModel:
    def test_hnd_faster_than_nhd(self, cluster_a10_8):
        hnd = TransferModel(cluster=cluster_a10_8, layout=KVLayout.HND)
        nhd = TransferModel(cluster=cluster_a10_8, layout=KVLayout.NHD)
        assert hnd.kv_swap_time(1e9) < nhd.kv_swap_time(1e9)

    def test_unpinned_slower(self, cluster_a10_8):
        pinned = TransferModel(cluster=cluster_a10_8, pinned=True)
        unpinned = TransferModel(cluster=cluster_a10_8, pinned=False)
        assert pinned.kv_swap_time(1e9) < unpinned.kv_swap_time(1e9)
        assert pinned.overlappable and not unpinned.overlappable

    def test_negative_rejected(self, cluster_a10_8):
        with pytest.raises(ConfigurationError):
            TransferModel(cluster=cluster_a10_8).kv_swap_time(-1)


class TestStepCostModel:
    def test_config_must_fit_cluster(self, model_34b, cluster_a10_4):
        with pytest.raises(ConfigurationError):
            StepCostModel(model_34b, cluster_a10_4, parse_config("T4P2"))

    def test_decode_iteration_pp_amplifies_weight_traffic(
        self, model_34b, cluster_a10_8
    ):
        """Observation 2: per decode iteration, PP does not reduce per-GPU
        weight traffic while TP divides it."""
        t8 = StepCostModel(model_34b, cluster_a10_8, parse_config("T8"))
        p8 = StepCostModel(model_34b, cluster_a10_8, parse_config("P8"))
        it_t8 = t8.decode_iteration_time(64, 64 * 1024)
        it_p8 = p8.decode_iteration_time(64, 64 * 1024)
        assert it_p8.linear_dm > 4 * it_t8.linear_dm

    def test_prefill_pp_beats_tp(self, model_34b, cluster_a10_8):
        """Observation 1: for prefill, PP streaming beats TP all-reduce."""
        t8 = StepCostModel(model_34b, cluster_a10_8, parse_config("T8"))
        p8 = StepCostModel(model_34b, cluster_a10_8, parse_config("P8"))
        # Per-token cost: one TP8 pass vs PP8 steady-state stage time.
        tp_time = t8.prefill_pass_time([8192]).total
        pp_stage = p8.prefill_stage_time([8192]).total
        assert pp_stage < tp_time

    def test_decode_empty_batch_free(self, model_34b, cluster_a10_8):
        m = StepCostModel(model_34b, cluster_a10_8, parse_config("T4P2"))
        assert m.decode_iteration_time(0, 0).total == 0.0

    def test_mixed_reduces_to_decode(self, model_34b, cluster_a10_8):
        m = StepCostModel(model_34b, cluster_a10_8, parse_config("T4P2"))
        mixed = m.mixed_iteration_time(0, 0, 32, 32 * 1000)
        decode = m.decode_iteration_time(32, 32 * 1000)
        assert mixed.total == pytest.approx(decode.total, rel=0.05)

    def test_mixed_piggyback_cheaper_than_separate(self, model_34b, cluster_a10_8):
        """One mixed pass must cost less than a prefill pass plus a decode
        iteration (that's the point of piggybacking)."""
        m = StepCostModel(model_34b, cluster_a10_8, parse_config("T2P2"))
        mixed = m.mixed_iteration_time(1024, 0, 64, 64 * 1500).total
        separate = (
            m.prefill_pass_time([1024]).total
            + m.decode_iteration_time(64, 64 * 1500).total
        )
        assert mixed < separate

    def test_kv_swap_time_scales(self, model_70b, cluster_a10_8):
        m = StepCostModel(model_70b, cluster_a10_8, parse_config("T4P2"))
        assert m.kv_swap_time(2000) == pytest.approx(2 * m.kv_swap_time(1000))
        assert m.kv_swap_time(0) == 0.0

    def test_reshard_time_zero_for_same(self, model_34b, cluster_a10_8):
        m = StepCostModel(model_34b, cluster_a10_8, parse_config("T4P2"))
        assert m.reshard_time(parse_config("T4P2")) == 0.0
        assert m.reshard_time(parse_config("P8")) > 0.0
