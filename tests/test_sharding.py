"""Shard maps and re-shard planning."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cluster import make_cluster
from repro.models.registry import get_model
from repro.parallel.config import ParallelConfig, parse_config
from repro.parallel.resharding import plan_reshard
from repro.parallel.sharding import build_shard_map


class TestShardMap:
    def test_gpu_count(self, model_34b):
        m = build_shard_map(model_34b, parse_config("D2T2P2"))
        assert m.num_gpus == 8

    def test_layers_partition_exactly(self, model_34b):
        m = build_shard_map(model_34b, parse_config("P8"))
        covered = []
        for s in m.shards:
            covered.extend(range(*s.layer_range))
        assert sorted(covered) == list(range(model_34b.num_layers))

    def test_uneven_layer_split(self):
        model = get_model("llama2-13b")  # 40 layers
        m = build_shard_map(model, ParallelConfig(pp=3))
        sizes = [s.num_layers for s in m.shards]
        assert sum(sizes) == 40
        assert max(sizes) - min(sizes) <= 1

    def test_pp_exceeding_layers_rejected(self, tiny_model):
        with pytest.raises(ConfigurationError):
            build_shard_map(tiny_model, ParallelConfig(pp=32))

    def test_total_weight_bytes_conserved(self, model_34b):
        for label in ("T4P2", "P8", "T8", "D2T4"):
            m = build_shard_map(model_34b, parse_config(label))
            per_replica = sum(
                s.weight_bytes(model_34b) for s in m.shards
            ) / parse_config(label).dp
            expected = model_34b.num_layers * model_34b.layer_weight_bytes
            assert per_replica == pytest.approx(expected, rel=1e-9)

    def test_overlap_identity(self, model_34b):
        m = build_shard_map(model_34b, parse_config("T4P2"))
        s = m.shard_for(0)
        assert s.layer_fraction_overlap(s) == pytest.approx(1.0)

    def test_overlap_disjoint_stages(self, model_34b):
        m = build_shard_map(model_34b, parse_config("P8"))
        assert m.shard_for(0).layer_fraction_overlap(m.shard_for(1)) == 0.0

    def test_overlap_tp_slices(self, model_34b):
        coarse = build_shard_map(model_34b, parse_config("T2")).shard_for(0)
        fine = build_shard_map(model_34b, parse_config("T4")).shard_for(0)
        # T4 rank0 slice [0, 1/4) lies entirely inside T2 rank0 [0, 1/2).
        assert fine.layer_fraction_overlap(coarse) == pytest.approx(1.0)
        # Conversely only half of the T2 slice is covered by the T4 slice.
        assert coarse.layer_fraction_overlap(fine) == pytest.approx(0.5)


class TestReshardPlan:
    def test_noop_transition_free(self, model_34b):
        plan = plan_reshard(model_34b, parse_config("T4P2"), parse_config("T4P2"))
        assert plan.total_transfer_bytes == 0.0

    def test_full_reload_bytes(self, model_34b):
        src, dst = parse_config("P8"), parse_config("T4P2")
        plan = plan_reshard(model_34b, src, dst)
        expected_per_gpu = model_34b.num_layers * model_34b.layer_weight_bytes / 8
        assert plan.max_transfer_bytes == pytest.approx(expected_per_gpu, rel=1e-9)

    def test_reuse_reduces_transfer(self, model_34b):
        src, dst = parse_config("T2P4"), parse_config("T4P2")
        full = plan_reshard(model_34b, src, dst, reuse_overlap=False)
        reuse = plan_reshard(model_34b, src, dst, reuse_overlap=True)
        assert reuse.total_transfer_bytes < full.total_transfer_bytes

    def test_transfer_time_positive(self, model_70b):
        cluster = make_cluster("A10", 8)
        plan = plan_reshard(model_70b, parse_config("P8"), parse_config("T4P2"))
        t = plan.transfer_time(cluster)
        # ~17 GB per GPU over ~13.6 GB/s: order of a second.
        assert 0.5 < t < 5.0

    def test_reuse_never_exceeds_need(self, model_34b):
        plan = plan_reshard(
            model_34b, parse_config("P4"), parse_config("T4"), reuse_overlap=True
        )
        for need, have in zip(plan.bytes_per_gpu, plan.reusable_bytes_per_gpu):
            assert have <= need + 1e-6
