"""Analysis helpers: comparisons, normalization, breakdown tables."""

import pytest

from repro.analysis.breakdown import attributed_fractions, phase_breakdown_table
from repro.analysis.report import (
    best_result,
    comparison_table,
    normalized_throughputs,
    speedup,
)
from repro.costmodel.breakdown import Breakdown
from repro.errors import ConfigurationError
from repro.runtime.metrics import EngineResult


def make_result(rps: float, label: str = "T4") -> EngineResult:
    n = 100
    return EngineResult(
        engine="x",
        label=label,
        num_requests=n,
        total_time=n / rps,
        input_tokens=n * 100,
        output_tokens=n * 10,
        phase_time={"prefill": 1.0, "decode": 2.0},
        breakdown=Breakdown(linear_dm=1.0, comm=0.5),
        iterations=5,
        transitions=0,
    )


class TestReport:
    def test_speedup(self):
        assert speedup(make_result(2.0), make_result(1.0)) == pytest.approx(2.0)

    def test_best_result(self):
        results = [make_result(1.0), make_result(3.0), make_result(2.0)]
        assert best_result(results).throughput_rps == pytest.approx(3.0)
        with pytest.raises(ConfigurationError):
            best_result([])

    def test_normalized(self):
        norm = normalized_throughputs(
            {"a": make_result(1.0), "b": make_result(2.0)}, "a"
        )
        assert norm["b"] == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            normalized_throughputs({"a": make_result(1.0)}, "zz")

    def test_comparison_table(self):
        out = comparison_table({"a": make_result(1.0), "b": make_result(2.0)}, "a")
        assert "req/s" in out and "a" in out and "b" in out


class TestBreakdown:
    def test_phase_table(self):
        out = phase_breakdown_table({"run": make_result(1.0)})
        assert "prefill" in out and "decode" in out

    def test_attributed_fractions_sum_to_one(self):
        frac = attributed_fractions(Breakdown(linear_dm=3, attn_comp=1, comm=1))
        assert sum(frac.values()) == pytest.approx(1.0)

    def test_attributed_fractions_empty(self):
        frac = attributed_fractions(Breakdown())
        assert all(v == 0.0 for v in frac.values())
