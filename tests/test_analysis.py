"""Analysis helpers: comparisons, normalization, breakdown tables."""

import pytest

from repro.analysis.breakdown import attributed_fractions, phase_breakdown_table
from repro.analysis.report import (
    best_result,
    comparison_table,
    normalized_throughputs,
    routing_table,
    speedup,
)
from repro.costmodel.breakdown import Breakdown
from repro.errors import ConfigurationError
from repro.routing import RouterStats
from repro.runtime.metrics import EngineResult


def make_result(
    rps: float, label: str = "T4", router: RouterStats | None = None
) -> EngineResult:
    n = 100
    return EngineResult(
        engine="x",
        label=label,
        num_requests=n,
        total_time=n / rps,
        input_tokens=n * 100,
        output_tokens=n * 10,
        phase_time={"prefill": 1.0, "decode": 2.0},
        breakdown=Breakdown(linear_dm=1.0, comm=0.5),
        iterations=5,
        transitions=0,
        router=router,
    )


def make_router_stats(policy: str = "jsq") -> RouterStats:
    return RouterStats(
        policy=policy,
        num_replicas=2,
        requests_per_replica=(60, 40),
        tokens_per_replica=(6600, 4400),
        peak_queued_prefill_tokens=(900.0, 300.0),
        predicted_preemptions=(1, 0),
        rebalanced_requests=2,
        rebalances=1,
    )


class TestReport:
    def test_speedup(self):
        assert speedup(make_result(2.0), make_result(1.0)) == pytest.approx(2.0)

    def test_best_result(self):
        results = [make_result(1.0), make_result(3.0), make_result(2.0)]
        assert best_result(results).throughput_rps == pytest.approx(3.0)
        with pytest.raises(ConfigurationError):
            best_result([])

    def test_normalized(self):
        norm = normalized_throughputs(
            {"a": make_result(1.0), "b": make_result(2.0)}, "a"
        )
        assert norm["b"] == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            normalized_throughputs({"a": make_result(1.0)}, "zz")

    def test_comparison_table(self):
        out = comparison_table({"a": make_result(1.0), "b": make_result(2.0)}, "a")
        assert "req/s" in out and "a" in out and "b" in out
        assert "tok-imbal" not in out  # no multi-replica routing stats

    def test_comparison_table_appends_router_columns(self):
        out = comparison_table(
            {
                "routed": make_result(1.0, router=make_router_stats()),
                "plain": make_result(2.0),
            }
        )
        assert "tok-imbal" in out and "jsq" in out
        assert "1.20" in out  # max/mean of (6600, 4400)

    def test_routing_table(self):
        out = routing_table(
            {
                "a": make_result(1.0, router=make_router_stats("static")),
                "plain": make_result(2.0),
            }
        )
        assert "static" in out and "queue-imbal" in out
        assert "1.50" in out  # peak-queue max/mean of (900, 300)
        with pytest.raises(ConfigurationError):
            routing_table({"plain": make_result(1.0)})


class TestBreakdown:
    def test_phase_table(self):
        out = phase_breakdown_table({"run": make_result(1.0)})
        assert "prefill" in out and "decode" in out

    def test_attributed_fractions_sum_to_one(self):
        frac = attributed_fractions(Breakdown(linear_dm=3, attn_comp=1, comm=1))
        assert sum(frac.values()) == pytest.approx(1.0)

    def test_attributed_fractions_empty(self):
        frac = attributed_fractions(Breakdown())
        assert all(v == 0.0 for v in frac.values())
