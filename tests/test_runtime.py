"""Runtime substrate: requests, KV cache, CPU buffer, channels, metrics."""


import pytest

from repro.costmodel.breakdown import Breakdown
from repro.errors import CapacityError, ConfigurationError, SimulationError
from repro.runtime.channel import TransferChannel
from repro.runtime.cpu_buffer import CPUKVBuffer
from repro.runtime.kvcache import KVCacheManager
from repro.runtime.metrics import EngineResult, PhaseTimer, RunMetrics, merge_dp_results
from repro.runtime.request import Request, Sequence, SequenceState


class TestRequest:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Request(request_id=0, prompt_len=0, output_len=1)
        with pytest.raises(ConfigurationError):
            Request(request_id=0, prompt_len=1, output_len=0)

    def test_total_tokens(self):
        assert Request(request_id=0, prompt_len=10, output_len=5).total_tokens == 15


class TestSequence:
    def make(self, prompt=100, out=10):
        return Sequence(Request(request_id=1, prompt_len=prompt, output_len=out))

    def test_initial_state(self):
        s = self.make()
        assert s.state is SequenceState.WAITING
        assert s.remaining_prefill == 100
        assert s.context_len == 0

    def test_prefill_then_decode(self):
        s = self.make(prompt=100, out=3)
        s.advance_prefill(100)
        s.state = SequenceState.RUNNING
        assert s.is_prefill_complete
        assert s.context_len == 100
        assert s.remaining_decode == 2  # first token came from prefill
        s.advance_decode()
        assert s.context_len == 101
        s.advance_decode()
        assert s.remaining_decode == 0

    def test_identity_equality(self):
        a, b = self.make(), self.make()
        assert a != b
        assert a in [a] and b not in [a]

    def test_preempt_recompute_extends_target(self):
        s = self.make(prompt=100, out=10)
        s.advance_prefill(100)
        s.state = SequenceState.RUNNING
        s.advance_decode()
        s.advance_decode()
        s.preempt_recompute()
        assert s.state is SequenceState.WAITING
        assert s.remaining_prefill == 102
        assert s.generated_tokens == 2

    def test_output_len_one_needs_no_decode(self):
        s = self.make(out=1)
        s.advance_prefill(100)
        assert s.remaining_decode == 0

    def test_mark_finished(self):
        s = self.make()
        s.mark_finished(12.5)
        assert s.is_finished and s.finish_time == 12.5


class TestKVCacheManager:
    def test_block_rounding(self):
        kv = KVCacheManager(capacity_tokens=1600, block_size=16)
        assert kv.blocks_for(1) == 1
        assert kv.blocks_for(16) == 1
        assert kv.blocks_for(17) == 2

    def test_allocate_free_cycle(self):
        kv = KVCacheManager(capacity_tokens=160, block_size=16)
        kv.allocate(1, 100)
        assert kv.holds(1)
        assert kv.num_sequences == 1
        used = kv.used_blocks
        kv.free(1)
        assert kv.used_blocks == used - 7

    def test_capacity_enforced(self):
        kv = KVCacheManager(capacity_tokens=160, block_size=16)
        with pytest.raises(CapacityError):
            kv.allocate(1, 200)

    def test_double_allocate_rejected(self):
        kv = KVCacheManager(capacity_tokens=160, block_size=16)
        kv.allocate(1, 16)
        with pytest.raises(SimulationError):
            kv.allocate(1, 16)

    def test_grow_within_block_free(self):
        kv = KVCacheManager(capacity_tokens=160, block_size=16)
        kv.allocate(1, 10)
        before = kv.used_blocks
        kv.grow(1, 16)
        assert kv.used_blocks == before

    def test_grow_allocates_blocks(self):
        kv = KVCacheManager(capacity_tokens=160, block_size=16)
        kv.allocate(1, 16)
        kv.grow(1, 33)
        assert kv.used_blocks == 3

    def test_grow_capacity_error(self):
        kv = KVCacheManager(capacity_tokens=32, block_size=16)
        kv.allocate(1, 32)
        with pytest.raises(CapacityError):
            kv.grow(1, 33)

    def test_free_unknown_rejected(self):
        kv = KVCacheManager(capacity_tokens=32, block_size=16)
        with pytest.raises(SimulationError):
            kv.free(9)

    def test_reservation_lifecycle(self):
        kv = KVCacheManager(capacity_tokens=64, block_size=16)
        kv.reserve(1, 32)
        assert kv.free_tokens == 32
        kv.allocate(1, 32)  # consumes the reservation
        assert kv.free_tokens == 32
        kv.free(1)
        assert kv.free_tokens == 64

    def test_reservation_cancel(self):
        kv = KVCacheManager(capacity_tokens=64, block_size=16)
        kv.reserve(1, 32)
        kv.cancel_reservation(1)
        assert kv.free_tokens == 64

    def test_cannot_reserve_twice(self):
        kv = KVCacheManager(capacity_tokens=64, block_size=16)
        kv.reserve(1, 16)
        with pytest.raises(SimulationError):
            kv.reserve(1, 16)


class TestCPUBuffer:
    def test_fifo_order(self):
        buf = CPUKVBuffer(capacity_tokens=1000)
        buf.push(1, 100)
        buf.push(2, 200)
        assert buf.peek() == (1, 100)
        assert buf.pop() == (1, 100)
        assert buf.pop() == (2, 200)
        assert buf.is_empty

    def test_capacity(self):
        buf = CPUKVBuffer(capacity_tokens=100)
        buf.push(1, 80)
        assert not buf.fits(30)
        with pytest.raises(CapacityError):
            buf.push(2, 30)

    def test_remove_specific(self):
        buf = CPUKVBuffer(capacity_tokens=1000)
        buf.push(1, 100)
        buf.push(2, 100)
        assert buf.remove(2) == 100
        assert 2 not in buf and 1 in buf
        assert buf.used_tokens == 100

    def test_peek_empty_rejected(self):
        with pytest.raises(SimulationError):
            CPUKVBuffer(capacity_tokens=10).peek()

    def test_duplicate_push_rejected(self):
        buf = CPUKVBuffer(capacity_tokens=1000)
        buf.push(1, 10)
        with pytest.raises(SimulationError):
            buf.push(1, 10)

    def test_zero_capacity_fits_nothing(self):
        buf = CPUKVBuffer(capacity_tokens=0)
        assert not buf.fits(1)
        assert buf.fits(0)


class TestTransferChannel:
    def test_serializes(self):
        ch = TransferChannel("d2h")
        end1 = ch.submit(0.0, 1.0)
        end2 = ch.submit(0.0, 1.0)
        assert end1 == pytest.approx(1.0)
        assert end2 == pytest.approx(2.0)

    def test_idle_gap(self):
        ch = TransferChannel("d2h")
        ch.submit(0.0, 1.0)
        end = ch.submit(5.0, 1.0)
        assert end == pytest.approx(6.0)
        assert ch.busy_time == pytest.approx(2.0)

    def test_idle_until(self):
        ch = TransferChannel("h2d")
        ch.idle_until(4.0)
        assert ch.submit(0.0, 1.0) == pytest.approx(5.0)

    def test_rejects_negative(self):
        ch = TransferChannel("x")
        with pytest.raises(SimulationError):
            ch.submit(0.0, -1.0)
        with pytest.raises(SimulationError):
            ch.submit(-1.0, 1.0)

    def test_job_count(self):
        ch = TransferChannel("x")
        ch.submit(0, 0.5)
        ch.submit(0, 0.5)
        assert ch.jobs_completed == 2


class TestMetrics:
    def test_phase_timer(self):
        t = PhaseTimer()
        t.add("prefill", 1.0)
        t.add("prefill", 0.5)
        assert t.get("prefill") == pytest.approx(1.5)
        assert t.total == pytest.approx(1.5)
        with pytest.raises(SimulationError):
            t.add("x", -1.0)

    def make_result(self, n=10, time=5.0, out=100):
        return EngineResult(
            engine="t",
            label="T1",
            num_requests=n,
            total_time=time,
            input_tokens=n * 50,
            output_tokens=out,
            phase_time={"decode": time},
            breakdown=Breakdown(),
            iterations=3,
            transitions=1,
        )

    def test_throughputs(self):
        r = self.make_result(n=10, time=5.0, out=100)
        assert r.throughput_rps == pytest.approx(2.0)
        assert r.throughput_tokens_per_s == pytest.approx(20.0)
        assert r.total_tokens_per_s == pytest.approx((500 + 100) / 5)

    def test_zero_time_rejected(self):
        with pytest.raises(SimulationError):
            self.make_result(time=0.0)

    def test_merge_dp(self):
        a = self.make_result(n=10, time=4.0)
        b = self.make_result(n=12, time=5.0)
        merged = merge_dp_results([a, b], engine="e", label="D2")
        assert merged.num_requests == 22
        assert merged.total_time == pytest.approx(5.0)
        assert merged.phase_time["decode"] == pytest.approx(5.0)

    def test_merge_empty_rejected(self):
        with pytest.raises(SimulationError):
            merge_dp_results([], engine="e", label="x")

    def test_describe(self):
        assert "req/s" in self.make_result().describe()

    def test_run_metrics_accumulates_breakdown(self):
        m = RunMetrics()
        m.add_phase("decode", 1.0, Breakdown(linear_dm=1.0))
        m.add_phase("decode", 1.0, Breakdown(linear_dm=2.0))
        assert m.breakdown.linear_dm == pytest.approx(3.0)
        assert m.phase_timer.get("decode") == pytest.approx(2.0)
