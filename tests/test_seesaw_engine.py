"""The Seesaw engine: re-sharding, tiered buffering, scheduling."""

import pytest

from repro.core.engine import SeesawEngine
from repro.core.options import SeesawOptions
from repro.errors import ConfigurationError
from repro.parallel.config import parse_config
from repro.workloads.datasets import arxiv_workload, sharegpt_workload
from repro.workloads.synthetic import constant_workload


class TestConstruction:
    def test_dp_must_match(self, model_34b, cluster_a10_8):
        with pytest.raises(ConfigurationError):
            SeesawEngine(
                model_34b, cluster_a10_8, parse_config("D2P4"), parse_config("T4P2")
            )

    def test_gpu_count_must_match(self, model_34b, cluster_a10_8):
        with pytest.raises(ConfigurationError):
            SeesawEngine(
                model_34b, cluster_a10_8, parse_config("P4"), parse_config("T4P2")
            )

    def test_label(self, model_34b, cluster_a10_8):
        e = SeesawEngine(
            model_34b, cluster_a10_8, parse_config("P8"), parse_config("T4P2")
        )
        assert e.label() == "P8->T4P2"


class TestExecution:
    def test_completes_all_requests(self, model_34b, cluster_a10_8, small_arxiv):
        r = SeesawEngine(
            model_34b, cluster_a10_8, parse_config("P8"), parse_config("T4P2")
        ).run(small_arxiv)
        assert r.num_requests == small_arxiv.num_requests
        assert r.output_tokens == small_arxiv.total_output_tokens

    def test_transitions_counted(self, model_34b, cluster_a10_8, small_arxiv):
        r = SeesawEngine(
            model_34b, cluster_a10_8, parse_config("P8"), parse_config("T4P2")
        ).run(small_arxiv)
        assert r.transitions >= 1
        assert r.phase_time.get("reshard", 0.0) > 0.0

    def test_kv_flows_through_cpu(self, model_34b, cluster_a10_8, small_arxiv):
        r = SeesawEngine(
            model_34b, cluster_a10_8, parse_config("P8"), parse_config("T4P2")
        ).run(small_arxiv)
        assert r.swapped_out_tokens > 0
        assert r.swapped_in_tokens > 0
        # Everything parked must eventually come back for decoding.
        assert r.swapped_in_tokens == r.swapped_out_tokens

    def test_degenerate_pair_skips_cpu(self, model_34b, cluster_a10_8, small_arxiv):
        r = SeesawEngine(
            model_34b, cluster_a10_8, parse_config("T4P2"), parse_config("T4P2")
        ).run(small_arxiv)
        assert r.transitions == 0
        assert r.swapped_out_tokens == 0

    def test_dp_pairs_run(self, model_34b, cluster_a10_8, small_arxiv):
        r = SeesawEngine(
            model_34b, cluster_a10_8, parse_config("D2P4"), parse_config("D2T4")
        ).run(small_arxiv)
        assert r.num_requests == small_arxiv.num_requests

    def test_output_len_one_never_parked(self, model_34b, cluster_a10_8):
        wl = constant_workload(16, 1024, 1)
        r = SeesawEngine(
            model_34b, cluster_a10_8, parse_config("P8"), parse_config("T4P2")
        ).run(wl)
        assert r.swapped_out_tokens == 0
        assert r.transitions == 0  # never needed the decode config

    def test_deterministic(self, model_34b, cluster_a10_8, small_arxiv):
        mk = lambda: SeesawEngine(
            model_34b, cluster_a10_8, parse_config("P8"), parse_config("T4P2")
        )
        assert mk().run(small_arxiv).total_time == pytest.approx(
            mk().run(small_arxiv).total_time
        )

    def test_tight_memory_70b(self, model_70b, cluster_a10_8):
        """The paper's hardest configuration: 70B on 8x24GiB."""
        wl = arxiv_workload(20, seed=5)
        r = SeesawEngine(
            model_70b, cluster_a10_8, parse_config("P8"), parse_config("T4P2")
        ).run(wl)
        assert r.num_requests == 20


class TestScheduling:
    def test_transition_minimizing_few_transitions(
        self, model_70b, cluster_a10_8
    ):
        """With the CPU pool larger than the workload, one cycle suffices."""
        wl = sharegpt_workload(60, seed=3)
        r = SeesawEngine(
            model_70b, cluster_a10_8, parse_config("P8"), parse_config("T4P2")
        ).run(wl)
        assert r.transitions <= 2

    def test_eager_transitions_many(self, model_70b, cluster_a10_8):
        wl = sharegpt_workload(60, seed=3)
        eager = SeesawEngine(
            model_70b,
            cluster_a10_8,
            parse_config("P8"),
            parse_config("T4P2"),
            SeesawOptions(eager_transitions=True),
        ).run(wl)
        assert eager.transitions >= 5

    def test_eager_transitions_slower(self, model_70b, cluster_a10_8):
        wl = sharegpt_workload(60, seed=3)
        mk = lambda opts: SeesawEngine(
            model_70b,
            cluster_a10_8,
            parse_config("P8"),
            parse_config("T4P2"),
            opts,
        ).run(wl)
        assert (
            mk(SeesawOptions(eager_transitions=True)).total_time
            > mk(SeesawOptions()).total_time
        )

    def test_arrival_rate_none_is_bit_exact(self, model_34b, cluster_a10_8):
        """The wait-vs-re-shard logic is gated on arrival_rate: unset, the
        phase loop is byte-for-byte the seed's (goldens survive)."""
        from repro.workloads.arrivals import poisson_arrivals

        wl = poisson_arrivals(arxiv_workload(24, seed=1), 0.3, seed=1)
        mk = lambda opts: SeesawEngine(
            model_34b,
            cluster_a10_8,
            parse_config("P8"),
            parse_config("T4P2"),
            opts,
        ).run(wl)
        default = mk(None)
        explicit = mk(SeesawOptions(arrival_rate=None))
        assert default.total_time == explicit.total_time
        assert default.phase_time == explicit.phase_time

    def test_arrival_aware_waiting_amortizes_transitions(
        self, model_34b, cluster_a10_8
    ):
        """Told the offered rate, the phase loop waits for predicted
        arrivals instead of re-sharding for every small batch — it must
        finish all requests without extra transitions."""
        from repro.workloads.arrivals import poisson_arrivals

        wl = poisson_arrivals(arxiv_workload(24, seed=1), 0.3, seed=1)
        mk = lambda rate: SeesawEngine(
            model_34b,
            cluster_a10_8,
            parse_config("P8"),
            parse_config("T4P2"),
            SeesawOptions(arrival_rate=rate),
        ).run(wl)
        baseline = mk(None)
        aware = mk(0.3)
        assert aware.num_requests == baseline.num_requests == 24
        assert aware.latency is not None
        assert aware.latency.num_requests == 24
        assert aware.transitions <= baseline.transitions

    def test_degenerate_pair_ignores_arrival_rate(
        self, model_34b, cluster_a10_8
    ):
        """cp == cd never re-shards, so there is nothing to wait for."""
        from repro.workloads.arrivals import poisson_arrivals

        wl = poisson_arrivals(constant_workload(12, 512, 32), 1.0, seed=0)
        mk = lambda rate: SeesawEngine(
            model_34b,
            cluster_a10_8,
            parse_config("T4P2"),
            parse_config("T4P2"),
            SeesawOptions(arrival_rate=rate),
        ).run(wl)
        assert mk(None).total_time == mk(5.0).total_time

    def test_arrival_rate_validated(self):
        with pytest.raises(ConfigurationError):
            SeesawOptions(arrival_rate=0.0)

    def test_multiple_cycles_when_cpu_small(self, model_34b, cluster_a10_8):
        """Shrinking the CPU pool forces several prefill/decode cycles."""
        from dataclasses import replace

        from repro.utils.units import GIB

        small_cpu = replace(cluster_a10_8, cpu_memory_per_gpu=2 * GIB)
        wl = arxiv_workload(40, seed=4)
        r = SeesawEngine(
            model_34b, small_cpu, parse_config("P8"), parse_config("T4P2")
        ).run(wl)
        assert r.num_requests == 40
        assert r.transitions >= 3


class TestAblations:
    def test_no_overlap_is_slower(self, model_70b, cluster_a10_8):
        wl = arxiv_workload(24, seed=6)
        mk = lambda opts: SeesawEngine(
            model_70b, cluster_a10_8, parse_config("P8"), parse_config("T4P2"), opts
        ).run(wl)
        overlapped = mk(SeesawOptions(overlap_swap=True))
        blocking = mk(SeesawOptions(overlap_swap=False))
        assert blocking.total_time >= overlapped.total_time

    def test_no_cpu_buffer_completes(self, model_34b, cluster_a10_8, small_arxiv):
        r = SeesawEngine(
            model_34b,
            cluster_a10_8,
            parse_config("P8"),
            parse_config("T4P2"),
            SeesawOptions(use_cpu_buffer=False),
        ).run(small_arxiv)
        assert r.num_requests == small_arxiv.num_requests
        assert r.swapped_out_tokens == 0

    def test_tiered_buffer_beats_no_buffer_under_pressure(
        self, model_70b, cluster_a10_8
    ):
        """Fig. 2's point: tiered buffering keeps decode batches full once
        the request population exceeds GPU KV capacity."""
        wl = sharegpt_workload(400, seed=8)
        mk = lambda opts: SeesawEngine(
            model_70b, cluster_a10_8, parse_config("P8"), parse_config("T4P2"), opts
        ).run(wl)
        tiered = mk(SeesawOptions())
        no_buffer = mk(SeesawOptions(use_cpu_buffer=False))
        assert tiered.throughput_rps > no_buffer.throughput_rps

    def test_nhd_layout_slower(self, model_70b, cluster_a10_8):
        from repro.costmodel.transfer import KVLayout

        wl = arxiv_workload(24, seed=6)
        mk = lambda layout: SeesawEngine(
            model_70b,
            cluster_a10_8,
            parse_config("P8"),
            parse_config("T4P2"),
            SeesawOptions(kv_layout=layout),
        ).run(wl)
        assert mk(KVLayout.NHD).total_time >= mk(KVLayout.HND).total_time
