"""Figure 13: throughput vs D:P ratio (70B, 8x A10, input 3000)."""

from repro.experiments.fig13_dp_ratio import render_fig13, run_fig13


def test_fig13_dp_ratio(benchmark, save_artifact):
    result = benchmark.pedantic(
        run_fig13, kwargs={"num_requests": 48}, rounds=1, iterations=1
    )
    winners = [result.best_static_at(i) for i in range(len(result.ratios))]
    assert winners[0] == "pp8"
    assert winners[-1] == "tp4pp2"
    assert "tp2pp4" in winners  # the crossover regime
    # Seesaw tracks the upper envelope across the sweep.
    for i in range(len(result.ratios)):
        best = max(result.throughput[k][i] for k in ("tp4pp2", "tp2pp4", "pp8"))
        assert result.throughput["pp8->tp4pp2"][i] >= 0.93 * best
    save_artifact("fig13_dp_ratio", render_fig13(result))
