"""Figure 11: 70B on 8x A100 - PCIe vs NVLink."""

import pytest

from repro.experiments.fig11_a100 import Fig11Result, render_fig11, run_fig11


@pytest.fixture(scope="module")
def fig11() -> Fig11Result:
    return run_fig11(num_arxiv=60, num_sharegpt=150, simulate_top=3)


def test_fig11_a100(benchmark, fig11, save_artifact):
    result = benchmark.pedantic(lambda: fig11, rounds=1, iterations=1)
    # Seesaw helps clearly on PCIe for the prefill-heavy workload (the
    # paper reports +46% there; our cost model lands lower but clearly
    # positive)...
    assert result.speedup("arxiv", "pcie") >= 1.1
    # ...and essentially ties everywhere else (the paper's +13-30% on the
    # remaining cells attenuates under our chunked-prefill baseline; see
    # EXPERIMENTS.md for the recorded deviation).
    assert result.speedup("arxiv", "nvlink") >= 0.95
    assert result.speedup("sharegpt", "nvlink") >= 0.95
    assert result.speedup("sharegpt", "pcie") >= 0.95
    # Seesaw lifts the PCIe machine closer to NVLink-class throughput on
    # the prefill-heavy workload.
    assert result.pcie_recovery("arxiv", "seesaw") > result.pcie_recovery(
        "arxiv", "vllm"
    )
    save_artifact("fig11_a100", render_fig11(result))
