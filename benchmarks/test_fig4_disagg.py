"""Figure 4: disaggregation throughput mismatch (70B on 8x40GiB)."""

from repro.experiments.fig4_disagg import render_fig4, run_fig4


def test_fig4_disagg(benchmark, save_artifact):
    result = benchmark.pedantic(
        run_fig4, kwargs={"num_requests": 200}, rounds=1, iterations=1
    )
    assert result.feasible_splits == ["4+4"]
    assert result.mismatch_ratio >= 4.0  # paper: > 6x
    assert result.decode_fraction_of_8gpu <= 0.40  # paper: ~15%
    save_artifact("fig4_disagg", render_fig4(result))
