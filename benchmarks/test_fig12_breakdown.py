"""Figure 12: speedup breakdown (34B, arxiv, 4x A10)."""

from repro.experiments.fig12_breakdown import render_fig12, run_fig12


def test_fig12_breakdown(benchmark, save_artifact):
    result = benchmark.pedantic(
        run_fig12, kwargs={"num_requests": 100}, rounds=1, iterations=1
    )
    runs = result.runs
    # TP4 is decode-optimal but prefill-poor; PP4 the reverse.
    assert runs["tp4"].phase_time["prefill"] > runs["pp4"].phase_time["prefill"]
    assert runs["pp4"].phase_time["decode"] > runs["tp4"].phase_time["decode"]
    # Seesaw merges both advantages...
    assert (
        runs["p4->t4"].phase_time["prefill"]
        <= 1.1 * runs["pp4"].phase_time["prefill"]
    )
    assert (
        runs["p4->t4"].phase_time["decode"] <= 1.25 * runs["tp4"].phase_time["decode"]
    )
    # ...and beats every static run, including tuned chunked prefill.
    seesaw_time = runs["p4->t4"].total_time
    for name in ("tp4", "pp4", "tp2pp2+chunked"):
        assert seesaw_time < runs[name].total_time
    save_artifact("fig12_breakdown", render_fig12(result))
