"""Figure 15 (appendix): data parallelism's effect on decode."""

from repro.experiments.fig15_dp_decode import render_fig15, run_fig15


def test_fig15_dp_decode(benchmark, save_artifact):
    result = benchmark.pedantic(run_fig15, rounds=3, iterations=1)
    assert not result.row("TP1DP8").fits  # OOM, as in the paper
    # Batch size grows super-linearly toward TP; per-request weight loading
    # shrinks (TP shards weights, DP duplicates them).
    assert result.row("TP8DP1").max_batch > result.row("TP2DP4").max_batch
    assert result.row("TP2DP4").load_weight > result.row("TP4DP2").load_weight
    assert result.row("TP4DP2").load_weight > result.row("TP8DP1").load_weight
    save_artifact("fig15_dp_decode", render_fig15(result))
