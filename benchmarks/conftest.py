"""Benchmark harness support.

Every benchmark regenerates one paper artifact (table or figure), times it
via pytest-benchmark, prints the rendered ASCII artifact, and writes it to
``benchmarks/artifacts/`` so EXPERIMENTS.md's numbers can be re-checked
without scrolling logs.
"""

from __future__ import annotations

import pathlib

import pytest

ARTIFACT_DIR = pathlib.Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    ARTIFACT_DIR.mkdir(exist_ok=True)
    return ARTIFACT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    """Persist a rendered artifact and echo it to stdout."""

    def _save(name: str, text: str) -> None:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[artifact saved to {path}]")

    return _save
