"""Figure 10a: end-to-end throughput on A10 (vLLM-best vs Seesaw).

Six cells: {15B, 34B, 70B} x {arxiv, sharegpt}. The harness sweeps static
configurations for the baseline and (cp, cd) pairs for Seesaw, exactly as
the paper's evaluation does, and prints the winning labels next to the
normalized throughputs. Request counts are scaled down ~5x from the paper
(pass full_scale=True to run_fig10 for the paper's 500/2000).
"""

import pytest

from repro.experiments.fig10_e2e import Fig10Result, render_fig10, run_fig10


@pytest.fixture(scope="module")
def fig10_a10() -> Fig10Result:
    return run_fig10(
        gpus=("A10",),
        models=("15b", "34b", "70b"),
        datasets=("arxiv", "sharegpt"),
        simulate_top=3,
    )


def test_fig10_a10(benchmark, fig10_a10, save_artifact):
    result = benchmark.pedantic(lambda: fig10_a10, rounds=1, iterations=1)
    assert all(c.speedup >= 0.95 for c in result.cells)
    assert result.max_speedup >= 1.1
    assert result.geomean_speedup >= 1.05
    # Prefill-heavy cells show clear wins (the paper's biggest gains).
    arxiv = [c for c in result.cells if c.dataset == "arxiv"]
    assert all(c.speedup >= 1.05 for c in arxiv)
    save_artifact("fig10a_e2e_a10", render_fig10(result))
