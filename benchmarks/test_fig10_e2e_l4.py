"""Figure 10b: end-to-end throughput on L4 (vLLM-best vs Seesaw)."""

import pytest

from repro.experiments.fig10_e2e import Fig10Result, render_fig10, run_fig10


@pytest.fixture(scope="module")
def fig10_l4() -> Fig10Result:
    return run_fig10(
        gpus=("L4",),
        models=("15b", "34b", "70b"),
        datasets=("arxiv", "sharegpt"),
        simulate_top=3,
    )


def test_fig10_l4(benchmark, fig10_l4, save_artifact):
    result = benchmark.pedantic(lambda: fig10_l4, rounds=1, iterations=1)
    assert all(c.speedup >= 0.95 for c in result.cells)
    assert result.max_speedup >= 1.2
    assert result.geomean_speedup >= 1.05
    save_artifact("fig10b_e2e_l4", render_fig10(result))
