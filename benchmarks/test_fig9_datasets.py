"""Figure 9: dataset length distributions."""

from repro.experiments.fig9_datasets import render_fig9, run_fig9


def test_fig9_datasets(benchmark, save_artifact):
    result = benchmark.pedantic(run_fig9, rounds=3, iterations=1)
    arxiv = result.stats["arxiv-summarization"]
    chat = result.stats["sharegpt"]
    assert arxiv.input_mean > 4 * arxiv.output_mean  # long in, short out
    assert 0.3 < chat.decode_prefill_ratio < 1.5  # comparable lengths
    save_artifact("fig9_datasets", render_fig9(result))
