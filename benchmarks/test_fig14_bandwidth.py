"""Figure 14: throughput vs interconnect bandwidth (34B, arxiv, 8x A10)."""

from repro.experiments.fig14_bandwidth import render_fig14, run_fig14


def test_fig14_bandwidth(benchmark, save_artifact):
    result = benchmark.pedantic(
        run_fig14, kwargs={"num_requests": 48}, rounds=1, iterations=1
    )
    statics = [k for k in result.throughput if "->" not in k and "auto" not in k]
    # PP-heavy wins at 0.1x, TP-heavy at 50x.
    first = max(statics, key=lambda k: result.throughput[k][0])
    last = max(statics, key=lambda k: result.throughput[k][-1])
    assert "p4" in first or "p8" in first
    assert "t8" in last or "t4" in last
    # Seesaw's fixed pair leads around true PCIe bandwidth.
    i_pcie = list(result.scales).index(1.0)
    best_static = max(result.throughput[k][i_pcie] for k in statics)
    assert result.throughput["d2p4->d2t4"][i_pcie] >= best_static
    save_artifact("fig14_bandwidth", render_fig14(result))
