"""Ablations of Seesaw's design decisions (DESIGN.md section 4).

Each benchmark flips one mechanism and reports the cost of losing it:
tiered CPU buffering, transition-minimizing scheduling, async swap overlap,
the HND KV layout, and weight-shard reuse during re-sharding.
"""

import pytest

from repro.analysis.report import comparison_table
from repro.core.engine import SeesawEngine
from repro.core.options import SeesawOptions
from repro.costmodel.transfer import KVLayout
from repro.hardware.cluster import make_cluster
from repro.models.registry import get_model
from repro.parallel.config import parse_config
from repro.workloads.datasets import sharegpt_workload

MODEL = get_model("70b")
CLUSTER = make_cluster("A10", 8)
CP, CD = parse_config("P8"), parse_config("T4P2")


@pytest.fixture(scope="module")
def workload():
    # Several times GPU KV capacity so every mechanism is exercised.
    return sharegpt_workload(300, seed=42)


def run_with(options: SeesawOptions, workload):
    return SeesawEngine(MODEL, CLUSTER, CP, CD, options).run(workload)


@pytest.fixture(scope="module")
def baseline(workload):
    return run_with(SeesawOptions(), workload)


def test_ablation_tiered_buffer(benchmark, workload, baseline, save_artifact):
    ablated = benchmark.pedantic(
        run_with,
        args=(SeesawOptions(use_cpu_buffer=False), workload),
        rounds=1,
        iterations=1,
    )
    assert baseline.throughput_rps > 1.1 * ablated.throughput_rps
    save_artifact(
        "ablation_tiered_buffer",
        comparison_table(
            {"seesaw": baseline, "no-cpu-buffer": ablated},
            title="Ablation: tiered KV cache buffering",
        ),
    )


def test_ablation_transition_minimizing(benchmark, workload, baseline, save_artifact):
    ablated = benchmark.pedantic(
        run_with,
        args=(SeesawOptions(eager_transitions=True), workload),
        rounds=1,
        iterations=1,
    )
    assert ablated.transitions > 4 * max(1, baseline.transitions)
    assert baseline.throughput_rps > 1.2 * ablated.throughput_rps
    save_artifact(
        "ablation_transition_minimizing",
        comparison_table(
            {"seesaw": baseline, "eager-transitions": ablated},
            title="Ablation: transition-minimizing scheduling",
        ),
    )


def test_ablation_async_overlap(benchmark, workload, baseline, save_artifact):
    ablated = benchmark.pedantic(
        run_with,
        args=(SeesawOptions(overlap_swap=False), workload),
        rounds=1,
        iterations=1,
    )
    assert ablated.total_time >= baseline.total_time
    save_artifact(
        "ablation_async_overlap",
        comparison_table(
            {"seesaw": baseline, "blocking-swaps": ablated},
            title="Ablation: asynchronous swap pipeline",
        ),
    )


def test_ablation_kv_layout(benchmark, workload, baseline, save_artifact):
    ablated = benchmark.pedantic(
        run_with,
        args=(SeesawOptions(kv_layout=KVLayout.NHD), workload),
        rounds=1,
        iterations=1,
    )
    assert ablated.total_time >= baseline.total_time
    save_artifact(
        "ablation_kv_layout",
        comparison_table(
            {"seesaw(HND)": baseline, "seesaw(NHD)": ablated},
            title="Ablation: bandwidth-aware KV layout",
        ),
    )


def test_ablation_weight_shard_reuse(benchmark, workload, baseline, save_artifact):
    optimized = benchmark.pedantic(
        run_with,
        args=(SeesawOptions(reuse_weight_overlap=True), workload),
        rounds=1,
        iterations=1,
    )
    assert optimized.total_time <= baseline.total_time + 1e-9
    save_artifact(
        "ablation_weight_shard_reuse",
        comparison_table(
            {"full-reload": baseline, "shard-reuse": optimized},
            title="Extension: reuse resident weight shards during re-shard",
        ),
    )
