"""Figure 1: prefill/decode time breakdown, LLaMA2-13B on 8x L4, batch 16.

Shape reproduced: prefill time grows with TP (communication-dominated at
TP8); decode time falls with TP (weight-transfer-dominated at PP8).
"""

from repro.experiments.fig1_breakdown import render_fig1, run_fig1


def test_fig1_breakdown(benchmark, save_artifact):
    result = benchmark.pedantic(run_fig1, rounds=3, iterations=1)
    prefill = [r.prefill_time for r in result.rows]
    decode = [r.decode_time for r in result.rows]
    assert prefill == sorted(prefill), "prefill must worsen with TP"
    assert decode[0] == max(decode), "PP8 must be the slowest decode"
    save_artifact("fig1_breakdown", render_fig1(result))
