"""Table 1: GPU hardware specification."""

from repro.experiments.table1_hw import render_table1, run_table1


def test_table1(benchmark, save_artifact):
    rows = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    assert {r.gpu for r in rows} >= {"A10", "L4", "A100-SXM"}
    save_artifact("table1_hardware", render_table1(rows))
