"""Figure 2 (quantified): scheduling policies under re-sharding overhead."""

from repro.experiments.fig2_scheduling import render_fig2, run_fig2


def test_fig2_scheduling(benchmark, save_artifact):
    result = benchmark.pedantic(
        run_fig2, kwargs={"num_requests": 300}, rounds=1, iterations=1
    )
    tput = result.throughputs
    assert (
        tput["tiered+transition-minimizing"]
        > tput["decode-prioritizing"]
        > tput["prefill-prioritizing"]
    )
    save_artifact("fig2_scheduling", render_fig2(result))
