#!/usr/bin/env python
"""Quickstart: run Seesaw against the vLLM-like baseline on one node.

Builds an 8x A10 cluster, loads CodeLLaMA-34B, samples a ShareGPT-shaped
workload, and compares a static-parallelism baseline against Seesaw's
dynamic re-sharding (pipeline-parallel prefill, tensor-parallel decode).

Run:
    python examples/quickstart.py
"""

from repro import (
    SeesawEngine,
    VllmLikeEngine,
    get_model,
    make_cluster,
    parse_config,
    sharegpt_workload,
)
from repro.analysis.report import comparison_table


def main() -> None:
    model = get_model("34b")
    cluster = make_cluster("A10", 8)
    workload = sharegpt_workload(num_requests=300, seed=0)
    print(f"model   : {model.describe()}")
    print(f"cluster : {cluster.describe()}")
    print(
        f"workload: {workload.num_requests} requests, "
        f"{workload.total_input_tokens} input / "
        f"{workload.total_output_tokens} output tokens "
        f"(D:P = {workload.decode_prefill_ratio:.2f})\n"
    )

    baseline = VllmLikeEngine(model, cluster, parse_config("T4P2")).run(workload)
    seesaw = SeesawEngine(
        model, cluster, parse_config("P8"), parse_config("T4P2")
    ).run(workload)

    print(
        comparison_table(
            {"vllm T4P2": baseline, "seesaw P8->T4P2": seesaw},
            baseline_key="vllm T4P2",
            title="Throughput comparison",
        )
    )
    print(
        f"\nSeesaw re-sharded the model {seesaw.transitions} time(s) and "
        f"moved {seesaw.swapped_out_tokens} tokens of KV through the CPU "
        f"pool, for a {seesaw.throughput_rps / baseline.throughput_rps:.2f}x "
        f"speedup."
    )


if __name__ == "__main__":
    main()
