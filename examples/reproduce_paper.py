#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Prints the ASCII equivalent of each artifact in order. Scaled-down request
counts by default; pass --full for the paper's sizes (slower).

Run:
    python examples/reproduce_paper.py [--full]
"""

import argparse
import time

from repro.experiments import (
    render_fig1,
    render_fig2,
    render_fig4,
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
    render_fig13,
    render_fig14,
    render_fig15,
    render_table1,
    run_fig1,
    run_fig2,
    run_fig4,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
)


def section(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="use the paper's request counts"
    )
    args = parser.parse_args()
    t0 = time.time()

    section("Table 1: GPU hardware specification")
    print(render_table1())

    section("Figure 1: prefill/decode breakdown (13B, 8x L4)")
    print(render_fig1(run_fig1()))

    section("Figure 2: scheduling policies (quantified)")
    print(render_fig2(run_fig2(num_requests=600 if args.full else 300)))

    section("Figure 4: disaggregation mismatch (70B, 8x 40GiB)")
    print(render_fig4(run_fig4(num_requests=400 if args.full else 200)))

    section("Figure 9: dataset length distributions")
    print(render_fig9(run_fig9()))

    section("Figure 10: end-to-end throughput on PCIe systems")
    print(render_fig10(run_fig10(full_scale=args.full)))

    section("Figure 11: A100 PCIe vs NVLink (70B)")
    kwargs = (
        dict(num_arxiv=500, num_sharegpt=2000)
        if args.full
        else dict(num_arxiv=60, num_sharegpt=150)
    )
    print(render_fig11(run_fig11(**kwargs)))

    section("Figure 12: speedup breakdown (34B, arxiv, 4x A10)")
    print(render_fig12(run_fig12(num_requests=500 if args.full else 100)))

    section("Figure 13: throughput vs D:P ratio (70B, 8x A10)")
    print(render_fig13(run_fig13(num_requests=64 if args.full else 32)))

    section("Figure 14: throughput vs interconnect bandwidth (34B, 8x A10)")
    print(render_fig14(run_fig14(num_requests=64 if args.full else 32)))

    section("Figure 15: data parallelism and decode (appendix)")
    print(render_fig15(run_fig15()))

    print(f"\nAll artifacts regenerated in {time.time() - t0:.0f}s.")


if __name__ == "__main__":
    main()
