#!/usr/bin/env python
"""Offline document summarization (the paper's arxiv-summarization scenario).

Long prompts, short outputs — the regime where prefill dominates and tensor
parallelism's all-reduce tax is most painful. This example uses the
autotuner the way a deployment would:

1. sweep every feasible static configuration for the baseline,
2. tune the chunked-prefill chunk size,
3. pick Seesaw's (cp, cd) pair,
4. run all three and report.

Run:
    python examples/offline_summarization.py
"""

from repro import (
    EngineOptions,
    SeesawEngine,
    VllmLikeEngine,
    arxiv_workload,
    best_seesaw_pair,
    best_static_config,
    get_model,
    make_cluster,
    tune_chunk_size,
)
from repro.analysis.breakdown import phase_breakdown_table
from repro.analysis.report import comparison_table


def main() -> None:
    model = get_model("34b")
    cluster = make_cluster("A10", 8)
    workload = arxiv_workload(num_requests=150, seed=1)
    print(f"Summarizing {workload.num_requests} documents "
          f"(mean prompt {workload.total_input_tokens / workload.num_requests:.0f} "
          f"tokens) on {cluster.describe()}\n")

    static_cfg = best_static_config(model, cluster, workload, simulate_top=3)
    chunk = tune_chunk_size(model, cluster, static_cfg, workload)
    print(f"best static config: {static_cfg.label()} (chunk size {chunk})")

    cp, cd = best_seesaw_pair(model, cluster, workload, simulate_top=3)
    print(f"best seesaw pair  : {cp.label()} -> {cd.label()}\n")

    results = {
        f"vllm {static_cfg.label()}": VllmLikeEngine(
            model, cluster, static_cfg
        ).run(workload),
        f"vllm {static_cfg.label()}+chunked": VllmLikeEngine(
            model,
            cluster,
            static_cfg,
            EngineOptions(chunked_prefill=True, chunk_size=chunk),
        ).run(workload),
        f"seesaw {cp.label()}->{cd.label()}": SeesawEngine(
            model, cluster, cp, cd
        ).run(workload),
    }

    print(comparison_table(results, title="End-to-end throughput"))
    print()
    print(phase_breakdown_table(results, title="Where the time goes (s)"))


if __name__ == "__main__":
    main()
