#!/usr/bin/env python
"""Batch chat inference on a memory-tight deployment (70B on 8x 24GiB).

The paper's hardest setting: LLaMA2-70B barely fits on eight A10s, GPU KV
space holds only a sliver of the request population, and the tiered CPU
buffer is what keeps decode batches full. The example contrasts three
scheduling regimes on the same (cp, cd) pair:

- eager transitions (prefill-prioritizing + re-sharding),
- no CPU buffer (decode-prioritizing + re-sharding),
- Seesaw's tiered buffering + transition-minimizing scheduling,

plus the static vLLM baseline.

Run:
    python examples/chat_batch.py
"""

from repro import (
    SeesawEngine,
    SeesawOptions,
    VllmLikeEngine,
    get_model,
    make_cluster,
    parse_config,
    sharegpt_workload,
)
from repro.analysis.report import comparison_table


def main() -> None:
    model = get_model("70b")
    cluster = make_cluster("A10", 8)
    workload = sharegpt_workload(num_requests=400, seed=2)
    cp, cd = parse_config("P8"), parse_config("T4P2")
    print(
        f"{workload.num_requests} chat requests on {cluster.describe()} — "
        f"weights alone take {model.total_weight_bytes / 2**30:.0f} GiB of "
        f"{cluster.total_gpu_memory / 2**30:.0f} GiB total\n"
    )

    results = {
        "vllm T4P2": VllmLikeEngine(model, cluster, cd).run(workload),
        "eager transitions": SeesawEngine(
            model, cluster, cp, cd, SeesawOptions(eager_transitions=True)
        ).run(workload),
        "no CPU buffer": SeesawEngine(
            model, cluster, cp, cd, SeesawOptions(use_cpu_buffer=False)
        ).run(workload),
        "seesaw (tiered + minimal transitions)": SeesawEngine(
            model, cluster, cp, cd, SeesawOptions()
        ).run(workload),
    }

    print(
        comparison_table(
            results,
            baseline_key="vllm T4P2",
            title="Scheduling policies under model re-sharding (Fig. 2, measured)",
        )
    )
    best = results["seesaw (tiered + minimal transitions)"]
    print(
        f"\nseesaw: {best.transitions} transition(s), "
        f"{best.swapped_in_tokens} tokens prefetched from the CPU pool."
    )


if __name__ == "__main__":
    main()
