#!/usr/bin/env python
"""Capacity planning: which parallelism, which interconnect, which split?

Uses the analytic predictor and the engines to answer three deployment
questions without touching hardware:

1. How does the optimal configuration shift with the workload's
   output:input ratio? (Fig. 13)
2. How much does interconnect bandwidth matter? (Fig. 14)
3. Should I disaggregate prefill and decode on this cluster? (Fig. 4)

Run:
    python examples/capacity_planning.py
"""

from repro.experiments.fig4_disagg import render_fig4, run_fig4
from repro.experiments.fig13_dp_ratio import render_fig13, run_fig13
from repro.experiments.fig14_bandwidth import render_fig14, run_fig14


def main() -> None:
    print("=== 1. Parallelism vs workload shape (70B, 8x A10) ===\n")
    fig13 = run_fig13(num_requests=32)
    print(render_fig13(fig13))
    winners = {
        f"{r:g}": fig13.best_static_at(i) for i, r in enumerate(fig13.ratios)
    }
    print(f"\nbest static config per D:P ratio: {winners}\n")

    print("=== 2. Interconnect sensitivity (34B, 8x A10) ===\n")
    fig14 = run_fig14(scales=(0.1, 1.0, 10.0), num_requests=32)
    print(render_fig14(fig14))

    print("\n=== 3. Disaggregation check (70B on 8x 40GiB A100) ===\n")
    fig4 = run_fig4(num_requests=150)
    print(render_fig4(fig4))
    print(
        "\nConclusion: with this model/cluster ratio, disaggregation leaves "
        f"a {fig4.mismatch_ratio:.1f}x stage mismatch — re-sharding one "
        "shared pool (Seesaw) uses the same GPUs without the bubble."
    )


if __name__ == "__main__":
    main()
